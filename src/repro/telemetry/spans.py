"""Span trees for sampled translation requests.

One :class:`RequestTrace` follows a single sampled CU issue end-to-end:

::

    translation                      (root: issue → last protocol action)
      l1_lookup                      outcome hit/miss
      l2_lookup                      outcome hit/miss
      mshr_wait                      merged into an in-flight miss
      host_link                      GPU → IOMMU transit
      iommu_lookup                   IOMMU TLB pipeline, outcome hit/miss
      pending_wait                   merged into an in-flight IOMMU miss
      remote_probe                   tracker-directed peer-L2 probe
      ring_probe                     tlb-probing's neighbour probes
      page_walk                      one per walk attempt (retries reopen)
      pri_fault                      PRI batch service of a faulting walk
      local_walk                     device-memory walk (Figure 23 variant)
      response                       IOMMU/peer → GPU transit

Spans carry begin/end cycles and an ``outcome`` tag (``ok``/``hit``/
``miss``/``timeout``/``cancelled``/``fault``/…).  The tree is *balanced*
by construction: at most one span per name is open at a time, closes are
idempotent (a timeout closing a span that already answered is a no-op),
and closing a child after the root closed extends the root — so children
always nest inside their parent.  :meth:`RequestTrace.finalize` force-
closes anything still open (e.g. a walk whose response a fault injector
dropped) with ``outcome="fault"`` so no span ever leaks.
"""

from __future__ import annotations

from typing import Any, Iterator

ROOT_SPAN = "translation"


class Span:
    """One timed, named interval within a request's lifetime."""

    __slots__ = ("span_id", "parent_id", "name", "begin", "end", "outcome", "tags")

    def __init__(
        self,
        span_id: int,
        parent_id: int,
        name: str,
        begin: int,
        tags: dict[str, Any] | None = None,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.begin = begin
        self.end: int | None = None
        self.outcome: str | None = None
        self.tags = tags or {}

    @property
    def closed(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> int:
        """Cycles from begin to end (0 while still open)."""
        return 0 if self.end is None else self.end - self.begin

    def to_dict(self) -> dict[str, Any]:
        return {
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "begin": self.begin,
            "end": self.end,
            "outcome": self.outcome,
            **({"tags": dict(self.tags)} if self.tags else {}),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, [{self.begin}, {self.end}], "
            f"outcome={self.outcome!r})"
        )


class RequestTrace:
    """The span tree of one sampled translation request."""

    __slots__ = (
        "trace_id", "gpu_id", "cu_id", "pid", "vpn",
        "spans", "_open", "_next_id",
    )

    def __init__(
        self, trace_id: int, gpu_id: int, cu_id: int, pid: int, vpn: int, cycle: int
    ) -> None:
        self.trace_id = trace_id
        self.gpu_id = gpu_id
        self.cu_id = cu_id
        self.pid = pid
        self.vpn = vpn
        root = Span(0, -1, ROOT_SPAN, cycle)
        self.spans: list[Span] = [root]
        self._open: dict[str, Span] = {ROOT_SPAN: root}
        self._next_id = 1

    # -- span lifecycle -------------------------------------------------------

    @property
    def root(self) -> Span:
        return self.spans[0]

    @property
    def complete(self) -> bool:
        """True once the root span closed (a response reached the CU)."""
        return self.root.closed

    def is_open(self, name: str) -> bool:
        return name in self._open

    def begin(self, name: str, cycle: int, **tags: Any) -> Span:
        """Open a child span.  A same-named span must be closed first —
        protocol retries (walk re-issues) close the old attempt before
        opening the next, so this is an API-misuse guard, not a limit."""
        if name in self._open:
            raise ValueError(f"span {name!r} is already open in trace {self.trace_id}")
        span = Span(self._next_id, self.root.span_id, name, cycle, tags or None)
        self._next_id += 1
        self.spans.append(span)
        self._open[name] = span
        return span

    def end(self, name: str, cycle: int, outcome: str = "ok") -> bool:
        """Close the open span ``name``.  Idempotent: returns ``False``
        without effect when no such span is open (the loser of a
        timeout-vs-response race simply no-ops)."""
        span = self._open.pop(name, None)
        if span is None:
            return False
        span.end = cycle
        span.outcome = outcome
        if name != ROOT_SPAN:
            root = self.root
            if root.end is not None and cycle > root.end:
                # A straggling responder (e.g. the walk that lost its race
                # against a remote probe) resolved after the CU was served;
                # the root stretches so every child stays nested within it.
                root.end = cycle
        return True

    def add_complete(
        self, name: str, begin: int, end: int, outcome: str = "ok", **tags: Any
    ) -> Span:
        """Record an already-finished interval (e.g. a link transit whose
        arrival time is known at send time)."""
        span = Span(self._next_id, self.root.span_id, name, begin, tags or None)
        self._next_id += 1
        span.end = end
        span.outcome = outcome
        self.spans.append(span)
        root = self.root
        if root.end is not None and end > root.end:
            root.end = end
        return span

    def close_root(self, cycle: int, outcome: str) -> bool:
        """Terminate the request with its single terminal outcome."""
        return self.end(ROOT_SPAN, cycle, outcome)

    def finalize(self, cycle: int, outcome: str = "fault") -> int:
        """Force-close every span still open (children first, root last)
        with ``outcome``; returns how many were closed.  This is how a
        trace whose response was lost to fault injection stays balanced
        instead of leaking open spans."""
        closed = 0
        for name in [n for n in self._open if n != ROOT_SPAN]:
            self.end(name, cycle, outcome)
            closed += 1
        if ROOT_SPAN in self._open:
            self.end(ROOT_SPAN, cycle, outcome)
            closed += 1
        return closed

    # -- introspection --------------------------------------------------------

    def __iter__(self) -> Iterator[Span]:
        return iter(self.spans)

    def __len__(self) -> int:
        return len(self.spans)

    def children(self) -> list[Span]:
        """All non-root spans."""
        return self.spans[1:]

    def check_invariants(self) -> list[str]:
        """Violations of the balanced-span-tree contract (empty = healthy).

        Checks: the root exists and is closed with exactly one terminal
        outcome; every span is closed with ``begin <= end`` and an
        outcome; every child nests inside the root's interval; no span
        remains open.
        """
        problems: list[str] = []
        root = self.root
        if root.name != ROOT_SPAN:
            problems.append(f"first span is {root.name!r}, not {ROOT_SPAN!r}")
        if self._open:
            problems.append(f"open spans leaked: {sorted(self._open)}")
        if not root.closed:
            problems.append("root span never closed")
        elif root.outcome is None:
            problems.append("root span closed without a terminal outcome")
        for span in self.spans:
            if not span.closed:
                continue
            if span.end < span.begin:
                problems.append(
                    f"span {span.name!r} ends before it begins "
                    f"({span.end} < {span.begin})"
                )
            if span.outcome is None:
                problems.append(f"span {span.name!r} closed without an outcome")
            if span is not root and root.closed:
                if span.begin < root.begin or span.end > root.end:
                    problems.append(
                        f"span {span.name!r} [{span.begin}, {span.end}] escapes "
                        f"root [{root.begin}, {root.end}]"
                    )
        return problems

    def to_dict(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "gpu_id": self.gpu_id,
            "cu_id": self.cu_id,
            "pid": self.pid,
            "vpn": self.vpn,
            "spans": [span.to_dict() for span in self.spans],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RequestTrace(#{self.trace_id} gpu{self.gpu_id} pid{self.pid} "
            f"vpn={self.vpn:#x}, {len(self.spans)} spans)"
        )
