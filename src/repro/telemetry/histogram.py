"""Mergeable log-bucketed latency histograms.

The seed's :class:`~repro.engine.stats.LatencyAccumulator` keeps only
``count``/``total``/``max`` — it cannot answer "what is the p99
translation latency?", which is the question behind the paper's
latency-race and interference figures.  :class:`LogHistogram` stores a
full distribution in O(log(max latency)) integers: power-of-two buckets
(bucket *i* covers ``[2^(i-1), 2^i - 1]``, bucket 0 holds exact zeros),
exact ``min``/``max``/``total``, and percentile estimates clamped to the
observed range.  Histograms merge losslessly, so per-GPU or per-app
distributions combine into system-wide ones without re-running anything.
"""

from __future__ import annotations

from typing import Any


class LogHistogram:
    """A latency distribution in power-of-two buckets."""

    __slots__ = ("buckets", "count", "total", "min", "max")

    def __init__(self) -> None:
        self.buckets: dict[int, int] = {}
        self.count = 0
        self.total = 0
        self.min = 0
        self.max = 0

    # -- recording ----------------------------------------------------------

    @staticmethod
    def bucket_index(value: int) -> int:
        """The bucket holding ``value``: 0 for 0, else ``value.bit_length()``."""
        return value.bit_length()

    @staticmethod
    def bucket_upper_bound(index: int) -> int:
        """Largest value bucket ``index`` can hold."""
        if index <= 0:
            return 0
        return (1 << index) - 1

    def record(self, value: int) -> None:
        """Add one sample (cycles)."""
        if value < 0:
            raise ValueError(f"negative latency: {value}")
        index = value.bit_length()
        self.buckets[index] = self.buckets.get(index, 0) + 1
        if self.count == 0 or value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.count += 1
        self.total += value

    def merge(self, other: "LogHistogram") -> None:
        """Fold ``other``'s samples into this histogram, losslessly."""
        if other.count == 0:
            return
        for index, n in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + n
        if self.count == 0:
            self.min = other.min
            self.max = other.max
        else:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)
        self.count += other.count
        self.total += other.total

    # -- queries ------------------------------------------------------------

    @property
    def mean(self) -> float:
        """Mean recorded latency, or 0.0 with no samples."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, fraction: float) -> int:
        """The ``fraction``-quantile, as the upper bound of the bucket the
        target rank falls into, clamped to the observed ``[min, max]``.

        The estimate therefore never exceeds the true maximum and is at
        most one power of two above the true quantile.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1]: {fraction}")
        if self.count == 0:
            return 0
        target = fraction * self.count
        seen = 0
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= target:
                bound = self.bucket_upper_bound(index)
                return max(self.min, min(bound, self.max))
        return self.max

    @property
    def p50(self) -> int:
        return self.percentile(0.50)

    @property
    def p90(self) -> int:
        return self.percentile(0.90)

    @property
    def p99(self) -> int:
        return self.percentile(0.99)

    # -- (de)serialisation ----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form, with headline percentiles precomputed."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.p50,
            "p90": self.p90,
            "p99": self.p99,
            "buckets": {str(i): n for i, n in sorted(self.buckets.items())},
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "LogHistogram":
        """Rebuild from :meth:`to_dict` output (percentiles recomputed)."""
        hist = cls()
        hist.count = data["count"]
        hist.total = data["total"]
        hist.min = data["min"]
        hist.max = data["max"]
        hist.buckets = {int(i): n for i, n in data["buckets"].items()}
        return hist

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LogHistogram(count={self.count}, min={self.min}, max={self.max}, "
            f"p50={self.p50 if self.count else 0})"
        )
