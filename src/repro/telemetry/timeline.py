"""Interval timelines: what the hierarchy did in each epoch of a run.

End-of-run counters say *how much* happened; the timeline says *when*.
Every ``timeline_interval`` cycles the recorder captures an epoch: the
delta of each activity counter since the previous epoch (hits, misses,
walks, spills, faults, remote hits) plus instantaneous state (TLB
occupancy, per-GPU Eviction Counters, pending-table depth, busy
walkers).  Epochs are plain dictionaries, serialised into the result
JSON, so phase behaviour — warm-up, steady state, interference onset —
is visible without re-running anything.

This module also owns :func:`capture_tlb_snapshot`, the TLB-*content*
observation behind ``--snapshot-interval`` (Figures 6 and 11).  The two
samplers answer different questions — the snapshot inspects residency
and duplication, the timeline inspects activity — but they are one
subsystem now: both live here and both are driven by the system's
periodic scheduling hooks.
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.results import Snapshot
    from repro.sim.system import MultiGPUSystem

#: Per-application counters whose epoch deltas the timeline tracks.
_APP_COUNTERS = ("l1_hit", "l1_miss", "l2_hit", "l2_miss", "remote_hit")

#: IOMMU counters whose epoch deltas the timeline tracks.
_IOMMU_COUNTERS = (
    "requests", "tlb_hit", "tlb_miss", "page_faults", "spills", "remote_hits",
)


class TimelineRecorder:
    """Accumulates per-epoch activity deltas over a run."""

    def __init__(self, interval: int) -> None:
        if interval <= 0:
            raise ValueError(f"timeline interval must be positive: {interval}")
        self.interval = interval
        self.epochs: list[dict[str, Any]] = []
        self._last_totals: dict[str, int] = {}

    def _totals(self, system: "MultiGPUSystem") -> dict[str, int]:
        totals = {name: 0 for name in _APP_COUNTERS}
        for pid in system.workload.pids:
            stats = system.stats_for(pid)
            for name in _APP_COUNTERS:
                totals[name] += stats[name]
        iommu = system.iommu.stats
        for name in _IOMMU_COUNTERS:
            totals[f"iommu_{name}"] = iommu[name]
        totals["walks_dispatched"] = system.iommu.walkers.stats["walks_dispatched"]
        return totals

    def capture(self, system: "MultiGPUSystem") -> dict[str, Any]:
        """Record one epoch: activity deltas plus instantaneous state."""
        totals = self._totals(system)
        epoch: dict[str, Any] = {
            "cycle": system.queue.now,
            "interval": self.interval,
        }
        for name, value in totals.items():
            epoch[name] = value - self._last_totals.get(name, 0)
        self._last_totals = totals
        lookups = epoch["l2_hit"] + epoch["l2_miss"]
        epoch["l2_hit_rate"] = epoch["l2_hit"] / lookups if lookups else 0.0
        iommu_lookups = epoch["iommu_tlb_hit"] + epoch["iommu_tlb_miss"]
        epoch["iommu_hit_rate"] = (
            epoch["iommu_tlb_hit"] / iommu_lookups if iommu_lookups else 0.0
        )
        epoch["l2_occupancy"] = sum(len(gpu.l2_tlb) for gpu in system.gpus)
        epoch["iommu_occupancy"] = len(system.iommu.tlb)
        epoch["eviction_counters"] = list(system.iommu.eviction_counters)
        epoch["pending_entries"] = len(system.iommu.pending)
        epoch["walkers_busy"] = system.iommu.walkers.busy
        self.epochs.append(epoch)
        return epoch

    def to_list(self) -> list[dict[str, Any]]:
        """The serialisable epoch list (shared, not copied)."""
        return self.epochs


def capture_tlb_snapshot(system: "MultiGPUSystem") -> "Snapshot":
    """One TLB-*content* observation (Figures 6 and 11): residency,
    cross-GPU duplication, cross-level duplication, and the per-GPU
    composition of the IOMMU TLB."""
    from repro.sim.results import Snapshot

    key_counts: Counter = Counter()
    for gpu in system.gpus:
        # sorted() so snapshot construction never depends on set order
        # (staticcheck D1) — the counts are the same either way.
        for key in sorted(gpu.l2_tlb.resident_keys()):
            key_counts[key] += 1
    iommu_keys = system.iommu.tlb.resident_keys()
    owner_counts = [0] * system.config.num_gpus
    for entry in system.iommu.tlb.iter_entries():
        if entry.owner_gpu >= 0:
            owner_counts[entry.owner_gpu] += 1
    return Snapshot(
        cycle=system.queue.now,
        l2_resident=len(key_counts),
        l2_duplicated=sum(1 for c in key_counts.values() if c >= 2),
        l2_also_in_iommu=len(set(key_counts) & iommu_keys),
        iommu_resident=len(iommu_keys),
        iommu_owner_counts=tuple(owner_counts),
    )
