"""Analytic queueing models for the walker pool.

The multi-application contention the paper measures is, to first order,
an M/M/c queue: translation misses arrive from hundreds of CUs
(approximately Poisson in aggregate), and the walker pool serves them
with ``c = num_walkers x walker_threads`` servers at a mean walk latency.
These helpers compute the Erlang-C expectation so simulations can be
sanity-checked against theory (``tests/integration/test_queueing_theory``)
and so users can size walker pools analytically before simulating.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.sim.results import SimulationResult


@dataclass(frozen=True)
class QueueEstimate:
    """Erlang-C prediction for a walker pool operating point."""

    arrival_rate: float
    service_time: float
    servers: int
    utilization: float
    probability_of_wait: float
    mean_wait: float

    @property
    def stable(self) -> bool:
        """True when utilization < 1 (finite queue)."""
        return self.utilization < 1.0


def erlang_c(servers: int, offered_load: float) -> float:
    """Probability an arrival waits in an M/M/c queue.

    ``offered_load`` is ``lambda * service_time`` (in Erlangs); the queue
    is only stable for ``offered_load < servers``.
    """
    if servers <= 0:
        raise ValueError(f"servers must be positive: {servers}")
    if offered_load < 0:
        raise ValueError(f"offered_load must be >= 0: {offered_load}")
    if offered_load >= servers:
        return 1.0
    # Iterative form avoids overflow for large server counts.
    inverse_b = 1.0
    for k in range(1, servers + 1):
        inverse_b = 1.0 + inverse_b * k / offered_load if offered_load else float("inf")
    blocking = 1.0 / inverse_b  # Erlang-B
    rho = offered_load / servers
    return blocking / (1.0 - rho + rho * blocking)


def mm_c_wait(arrival_rate: float, service_time: float, servers: int) -> QueueEstimate:
    """Mean queueing delay (excluding service) for an M/M/c walker pool."""
    if arrival_rate < 0 or service_time <= 0:
        raise ValueError("arrival_rate must be >= 0 and service_time positive")
    offered = arrival_rate * service_time
    utilization = offered / servers
    if utilization >= 1.0:
        return QueueEstimate(
            arrival_rate, service_time, servers, utilization,
            probability_of_wait=1.0, mean_wait=math.inf,
        )
    p_wait = erlang_c(servers, offered)
    mean_wait = p_wait * service_time / (servers * (1.0 - utilization))
    return QueueEstimate(
        arrival_rate, service_time, servers, utilization, p_wait, mean_wait
    )


def walker_operating_point(result: SimulationResult, config) -> QueueEstimate:
    """The walker pool's measured operating point, expressed analytically.

    Arrival rate is measured walks per cycle over the run; service time is
    the configured full-walk latency.  The returned estimate is what M/M/c
    *predicts* for that operating point — compare against
    ``result.walker_queue_wait_mean`` to see how far the real (bursty,
    correlated) arrival process deviates from Poisson.
    """
    cycles = max(1, result.total_cycles)
    walks = result.walker_counters.get("walks_dispatched", 0)
    servers = config.iommu.num_walkers * config.iommu.walker_threads
    return mm_c_wait(walks / cycles, config.iommu.walk_latency, servers)
