"""Analytic models for sanity-checking simulation results."""

from repro.analysis.queueing import QueueEstimate, erlang_c, mm_c_wait, walker_operating_point

__all__ = ["QueueEstimate", "erlang_c", "mm_c_wait", "walker_operating_point"]
