"""Weighted speedup (Section 3.1).

``WS = Σ_i IPC_i(mix) / IPC_i(alone)`` over the applications of a
multi-application workload, where the alone runs execute each application
by itself on one GPU.  A WS of N (the application count) means zero
interference; Figure 7 reports how far below N the baseline falls, and
Figure 16 how much of that gap least-TLB recovers.
"""

from __future__ import annotations

from repro.sim.results import AppResult, SimulationResult


def per_app_slowdowns(
    mix: SimulationResult, alone: dict[str, AppResult]
) -> dict[int, float]:
    """``IPC(mix)/IPC(alone)`` per PID; 1.0 means no interference.

    ``alone`` maps application name → its alone-run result (one entry per
    distinct application; duplicates in the mix share it).
    """
    slowdowns: dict[int, float] = {}
    for pid, app in mix.apps.items():
        try:
            reference = alone[app.app_name]
        except KeyError:
            raise ValueError(
                f"no alone run provided for application {app.app_name!r}"
            ) from None
        if reference.ipc <= 0:
            raise ValueError(f"alone run of {app.app_name!r} has zero IPC")
        slowdowns[pid] = app.ipc / reference.ipc
    return slowdowns


def weighted_speedup(mix: SimulationResult, alone: dict[str, AppResult]) -> float:
    """The workload's weighted speedup (upper bound: number of apps)."""
    return sum(per_app_slowdowns(mix, alone).values())


def normalized_weighted_speedup(
    policy: SimulationResult,
    baseline: SimulationResult,
    alone: dict[str, AppResult],
) -> float:
    """Figure 16's headline: WS(policy) / WS(baseline).

    Because both share the same alone-run denominators, the ratio is
    independent of which policy produced the alone runs.
    """
    base_ws = weighted_speedup(baseline, alone)
    if base_ws <= 0:
        raise ValueError("baseline weighted speedup is zero")
    return weighted_speedup(policy, alone) / base_ws
