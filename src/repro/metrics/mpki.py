"""MPKI measurement helpers (Table 3's characterisation metric)."""

from __future__ import annotations

from repro.sim.results import AppResult, SimulationResult
from repro.workloads.applications import classify_mpki


def l2_mpki(app: AppResult) -> float:
    """L2-TLB misses per kilo-instruction of one application."""
    return app.mpki


def mpki_table(result: SimulationResult) -> dict[str, tuple[float, str]]:
    """``{app_name: (mpki, class)}`` for every application in a result.

    Applications appearing multiple times (e.g. MT twice in W10) report
    the mean MPKI across their instances.
    """
    by_name: dict[str, list[float]] = {}
    for app in result.apps.values():
        by_name.setdefault(app.app_name, []).append(app.mpki)
    return {
        name: (sum(values) / len(values), classify_mpki(sum(values) / len(values)))
        for name, values in by_name.items()
    }
