"""Analysis metrics: reuse distance, sharing, MPKI, weighted speedup."""

from repro.metrics.mpki import l2_mpki, mpki_table
from repro.metrics.reuse_distance import (
    COLD,
    fraction_within,
    per_pid_distances,
    reuse_cdf,
    reuse_distances,
)
from repro.metrics.sharing import (
    iommu_composition,
    mean_cross_level_duplication,
    mean_l2_duplication,
    shared_fraction,
    sharing_degrees,
)
from repro.metrics.weighted_speedup import (
    normalized_weighted_speedup,
    per_app_slowdowns,
    weighted_speedup,
)

__all__ = [
    "l2_mpki",
    "mpki_table",
    "COLD",
    "fraction_within",
    "per_pid_distances",
    "reuse_cdf",
    "reuse_distances",
    "iommu_composition",
    "mean_cross_level_duplication",
    "mean_l2_duplication",
    "shared_fraction",
    "sharing_degrees",
    "normalized_weighted_speedup",
    "per_app_slowdowns",
    "weighted_speedup",
]
