"""Translation reuse-distance analysis (Figures 5 and 8).

Reuse distance is defined in Section 3.1 as the number of *unique*
translations between two accesses to the same translation; in
multi-application workloads the key includes the process ID, so reuses are
per-application even through the shared IOMMU TLB.

The implementation is the classic stack-distance algorithm over a Fenwick
tree: O(n log n) over the recorded IOMMU request stream.
"""

from __future__ import annotations

import numpy as np

COLD = -1
"""Distance assigned to the first access of each translation."""


class _FenwickTree:
    """Binary indexed tree over access positions (1-based internally)."""

    __slots__ = ("_tree", "_size")

    def __init__(self, size: int) -> None:
        self._size = size
        self._tree = [0] * (size + 1)

    def add(self, index: int, delta: int) -> None:
        """Point update: add ``delta`` at ``index``."""
        index += 1
        while index <= self._size:
            self._tree[index] += delta
            index += index & (-index)

    def prefix_sum(self, index: int) -> int:
        """Sum of values at positions ``0..index`` inclusive."""
        index += 1
        total = 0
        while index > 0:
            total += self._tree[index]
            index -= index & (-index)
        return total


def reuse_distances(stream: list[tuple[int, int]]) -> np.ndarray:
    """Per-access reuse distances for a ``(pid, vpn)`` stream.

    Returns an array aligned with ``stream``; first accesses get
    :data:`COLD` (−1).  The distance counts distinct keys seen strictly
    between the two accesses to the same key.
    """
    n = len(stream)
    distances = np.full(n, COLD, dtype=np.int64)
    if n == 0:
        return distances
    tree = _FenwickTree(n)
    last_seen: dict[tuple[int, int], int] = {}
    for position, key in enumerate(stream):
        previous = last_seen.get(key)
        if previous is not None:
            # Distinct keys after `previous`: each contributes its most
            # recent occurrence, which is the position the tree marks.
            distances[position] = tree.prefix_sum(position - 1) - tree.prefix_sum(
                previous
            )
            tree.add(previous, -1)
        tree.add(position, 1)
        last_seen[key] = position
    return distances


def reuse_cdf(
    distances: np.ndarray, points: list[int] | None = None
) -> list[tuple[int, float]]:
    """Cumulative distribution of finite reuse distances.

    Returns ``(distance, fraction of reuses ≤ distance)`` pairs at the
    requested evaluation points (defaults to powers of two up to 64 Ki,
    bracketing the paper's 4096-entry IOMMU TLB marker).
    """
    finite = distances[distances >= 0]
    if points is None:
        points = [2**k for k in range(4, 17)]
    if len(finite) == 0:
        return [(p, 0.0) for p in points]
    finite_sorted = np.sort(finite)
    return [
        (p, float(np.searchsorted(finite_sorted, p, side="right")) / len(finite_sorted))
        for p in points
    ]


def fraction_within(distances: np.ndarray, capacity: int) -> float:
    """Fraction of reuses a ``capacity``-entry fully-associative LRU TLB
    could capture — the paper's "reuses within the IOMMU TLB capacity"."""
    finite = distances[distances >= 0]
    if len(finite) == 0:
        return 0.0
    return float(np.count_nonzero(finite <= capacity)) / len(finite)


def per_pid_distances(
    stream: list[tuple[int, int]]
) -> dict[int, np.ndarray]:
    """Reuse distances of the shared stream, grouped by PID.

    Distances are computed over the *interleaved* stream (contention from
    other applications stretches them — the Figure 8 effect), then split by
    the application that issued each access.
    """
    distances = reuse_distances(stream)
    by_pid: dict[int, list[int]] = {}
    for (pid, _vpn), distance in zip(stream, distances.tolist()):
        by_pid.setdefault(pid, []).append(distance)
    return {pid: np.array(values, dtype=np.int64) for pid, values in by_pid.items()}
