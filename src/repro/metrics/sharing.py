"""Page-sharing and redundancy analysis (Figures 4, 6, and 11).

*Sharing degree* (Figure 4): for each page an application touches, how
many GPUs touch it during execution.  Computed directly from the workload
traces — it is a property of the access pattern, not of any TLB policy.

*Redundancy* (Figure 6): from periodic TLB snapshots, the fraction of
L2-resident translations duplicated across GPUs and the fraction also
present in the IOMMU TLB.  *IOMMU composition* (Figure 11): the same
snapshots broken down by the GPU whose eviction contributed each entry.
"""

from __future__ import annotations

from collections import Counter

from repro.sim.results import Snapshot
from repro.workloads.trace import Workload


def sharing_degrees(workload: Workload, pid: int | None = None) -> dict[int, float]:
    """Fraction of touched pages shared by exactly *k* GPUs.

    Returns ``{k: fraction}`` over the pages of ``pid`` (default: the
    single application of a single-app workload).
    """
    if pid is None:
        pids = workload.pids
        if len(pids) != 1:
            raise ValueError(
                "workload has multiple applications; pass pid explicitly"
            )
        pid = pids[0]
    page_gpus: dict[int, set[int]] = {}
    for placement in workload.placements:
        if placement.pid != pid:
            continue
        for stream in placement.streams:
            # sorted() pins page_gpus construction order (staticcheck D1).
            for vpn in sorted(set(stream.vpns.tolist())):
                page_gpus.setdefault(vpn, set()).add(placement.gpu_id)
    if not page_gpus:
        return {}
    counts = Counter(len(gpus) for gpus in page_gpus.values())
    total = sum(counts.values())
    return {k: counts[k] / total for k in sorted(counts)}


def shared_fraction(workload: Workload, pid: int | None = None, min_gpus: int = 2) -> float:
    """Fraction of touched pages shared by at least ``min_gpus`` GPUs."""
    degrees = sharing_degrees(workload, pid)
    return sum(f for k, f in degrees.items() if k >= min_gpus)


def mean_l2_duplication(snapshots: list[Snapshot]) -> float:
    """Average fraction of L2-resident translations held by ≥2 GPUs."""
    if not snapshots:
        return 0.0
    return sum(s.l2_duplication_fraction for s in snapshots) / len(snapshots)


def mean_cross_level_duplication(snapshots: list[Snapshot]) -> float:
    """Average fraction of L2-resident translations also in the IOMMU TLB."""
    if not snapshots:
        return 0.0
    return sum(s.cross_level_duplication_fraction for s in snapshots) / len(snapshots)


def iommu_composition(snapshots: list[Snapshot]) -> list[float]:
    """Average share of IOMMU TLB entries contributed by each GPU
    (Figure 11's owner breakdown)."""
    if not snapshots:
        return []
    num_gpus = len(snapshots[0].iommu_owner_counts)
    totals = [0.0] * num_gpus
    for snapshot in snapshots:
        resident = max(1, snapshot.iommu_resident)
        for gpu, count in enumerate(snapshot.iommu_owner_counts):
            totals[gpu] += count / resident
    return [t / len(snapshots) for t in totals]
