"""Configuration dataclasses describing the simulated multi-GPU system.

The defaults reproduce Table 2 of the paper (per-CU L1 TLB, per-GPU L2 TLB,
shared IOMMU TLB, eight shared page-table walkers) via
:func:`repro.config.presets.baseline_config`.  Every experiment variant in
the evaluation is expressed as a ``dataclasses.replace`` of these frozen
records, so a configuration fully identifies a run.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

PAGE_4KB = 4 * 1024
PAGE_2MB = 2 * 1024 * 1024


@dataclass(frozen=True)
class TLBLevelConfig:
    """Geometry and access latency of one TLB level."""

    num_entries: int
    associativity: int
    lookup_latency: int
    replacement: str = "lru"

    def __post_init__(self) -> None:
        if self.num_entries <= 0:
            raise ValueError(f"num_entries must be positive: {self.num_entries}")
        if self.associativity <= 0 or self.num_entries % self.associativity:
            raise ValueError(
                f"associativity {self.associativity} must divide "
                f"num_entries {self.num_entries}"
            )
        if self.lookup_latency < 0:
            raise ValueError(f"lookup_latency must be >= 0: {self.lookup_latency}")


@dataclass(frozen=True)
class GPUConfig:
    """One GPU device: compute units and its private TLB levels."""

    num_cus: int = 64
    slots_per_cu: int = 2
    """Outstanding-translation window per CU — the wavefront-level latency
    hiding the issue model grants each compute unit.  Two in-flight
    translations per CU (512 per GPU with Table 2's 64 CUs) reproduces the
    paper's regime where address translation consumes a large fraction of
    runtime for high-MPKI applications."""

    l1_tlb: TLBLevelConfig = field(
        default_factory=lambda: TLBLevelConfig(
            num_entries=16, associativity=16, lookup_latency=1
        )
    )
    l2_tlb: TLBLevelConfig = field(
        default_factory=lambda: TLBLevelConfig(
            num_entries=512, associativity=16, lookup_latency=10
        )
    )

    def __post_init__(self) -> None:
        if self.num_cus <= 0:
            raise ValueError(f"num_cus must be positive: {self.num_cus}")
        if self.slots_per_cu <= 0:
            raise ValueError(f"slots_per_cu must be positive: {self.slots_per_cu}")


@dataclass(frozen=True)
class IOMMUConfig:
    """The CPU-side IOMMU: shared TLB, walker pool, and fault handling."""

    tlb: TLBLevelConfig = field(
        default_factory=lambda: TLBLevelConfig(
            num_entries=4096, associativity=64, lookup_latency=200
        )
    )
    infinite_tlb: bool = False
    """Replace the IOMMU TLB with an unbounded one (Figure 3 study)."""

    num_walkers: int = 8
    walker_threads: int = 3
    """Concurrent walks each walker sustains.  The paper's IOMMU triggers
    "multi-threaded PTWs" (Section 2.2); eight walkers with three threads
    give the pool 24 walks in flight, so its throughput — not a single
    walk's latency — is what saturates under high-MPKI contention."""
    walk_latency: int = 500
    """End-to-end latency of a full page-table walk; partial walks (faults)
    are charged proportionally to the levels they touch."""

    walker_scheduler: str = "fifo"
    """``fifo`` (shared pool, paper baseline) or ``dws`` (per-GPU partitions
    with work stealing, the Section 5.6 PTW optimisation)."""

    pri_batch_size: int = 8
    pri_timeout: int = 10_000
    """Page faults queue at the Page Request Interface and are handled by
    the CPU in batches (whichever of size/timeout is reached first)."""

    fault_handling_latency: int = 20_000
    """CPU-side cost of servicing one PRI batch."""

    def __post_init__(self) -> None:
        if self.num_walkers <= 0:
            raise ValueError(f"num_walkers must be positive: {self.num_walkers}")
        if self.walker_threads <= 0:
            raise ValueError(f"walker_threads must be positive: {self.walker_threads}")
        if self.walker_scheduler not in ("fifo", "dws"):
            raise ValueError(f"unknown walker_scheduler: {self.walker_scheduler!r}")
        if self.pri_batch_size <= 0:
            raise ValueError(f"pri_batch_size must be positive: {self.pri_batch_size}")


@dataclass(frozen=True)
class TrackerConfig:
    """The Local TLB Tracker in the IOMMU (Section 4.1).

    ``total_entries`` fingerprint slots are divided equally among the GPUs,
    one cuckoo-filter partition per GPU (2048 total → 512 per GPU in the
    4-GPU baseline, ≈1.08 KB of state)."""

    total_entries: int = 2048
    bucket_size: int = 4
    fingerprint_bits: int = 6
    kind: str = "cuckoo"
    """``cuckoo`` (the paper's design), ``bloom`` (counting Bloom filter
    ablation), or ``perfect`` (oracle membership, upper bound)."""

    def __post_init__(self) -> None:
        if self.kind not in ("cuckoo", "bloom", "perfect"):
            raise ValueError(f"unknown tracker kind: {self.kind!r}")
        if self.total_entries <= 0:
            raise ValueError(f"total_entries must be positive: {self.total_entries}")


@dataclass(frozen=True)
class InterconnectConfig:
    """Link latencies, in CU cycles (1 GHz ⇒ 1 cycle = 1 ns).

    ``host_link_latency`` is the PCIe-class GPU↔IOMMU path (~300 ns in the
    paper's discussion); ``peer_link_latency`` is the high-bandwidth
    GPU↔GPU fabric a remote-L2 probe response travels on.  Figure 20 sweeps
    the remote-probe cost through ``remote_latency_scale``.
    """

    host_link_latency: int = 300
    peer_link_latency: int = 100
    remote_latency_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.host_link_latency < 0 or self.peer_link_latency < 0:
            raise ValueError("link latencies must be >= 0")
        if self.remote_latency_scale <= 0:
            raise ValueError(
                f"remote_latency_scale must be positive: {self.remote_latency_scale}"
            )

    @property
    def scaled_peer_latency(self) -> int:
        """Peer-link latency after applying the Figure 20 sweep factor."""
        return max(1, round(self.peer_link_latency * self.remote_latency_scale))


@dataclass(frozen=True)
class SystemConfig:
    """The complete multi-GPU system under simulation."""

    num_gpus: int = 4
    page_size: int = PAGE_4KB
    gpu: GPUConfig = field(default_factory=GPUConfig)
    iommu: IOMMUConfig = field(default_factory=IOMMUConfig)
    tracker: TrackerConfig = field(default_factory=TrackerConfig)
    interconnect: InterconnectConfig = field(default_factory=InterconnectConfig)

    spill_budget: int = 1
    """The paper's spilling counter ``N`` (Section 4.2); 1 in the baseline
    design, 2 in the Figure 19 sensitivity study."""

    local_page_tables: bool = False
    """Figure 23 variant: each GPU keeps its own page table in device
    memory; only local page faults reach the IOMMU."""

    local_walk_latency: int = 500
    local_num_walkers: int = 8

    seed: int = 1

    def __post_init__(self) -> None:
        if self.num_gpus <= 0:
            raise ValueError(f"num_gpus must be positive: {self.num_gpus}")
        if self.page_size <= 0 or self.page_size & (self.page_size - 1):
            raise ValueError(f"page_size must be a positive power of two: {self.page_size}")
        if self.spill_budget < 0:
            raise ValueError(f"spill_budget must be >= 0: {self.spill_budget}")

    @property
    def page_table_levels(self) -> int:
        """Radix levels for the configured page size (4 for 4 KB pages,
        3 for 2 MB pages, x86-64 style)."""
        return 3 if self.page_size >= PAGE_2MB else 4

    def derive(self, **changes: Any) -> "SystemConfig":
        """A copy with top-level fields replaced (sweep convenience)."""
        return replace(self, **changes)
