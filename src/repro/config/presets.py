"""Named system configurations used throughout the evaluation.

Each preset corresponds to a configuration the paper evaluates:

* :func:`baseline_config` — Table 2, the 4-GPU system with a shared IOMMU.
* :func:`small_iommu_config` — the 2048-entry IOMMU TLB sensitivity (§5.3).
* :func:`large_page_config` — 2 MB pages (Figure 24).
* :func:`local_page_table_config` — per-GPU page tables (Figure 23).
* :func:`scaled_config` — 8/16-GPU systems (Figure 21).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable

from repro.config.system import (
    PAGE_2MB,
    SystemConfig,
    TLBLevelConfig,
)


def baseline_config(num_gpus: int = 4, seed: int = 1) -> SystemConfig:
    """The Table 2 baseline: 64 CUs/GPU, 16-entry L1 TLBs, 512-entry L2
    TLBs, a 4096-entry/64-way/200-cycle IOMMU TLB, and 8 shared walkers at
    500 cycles per walk."""
    return SystemConfig(num_gpus=num_gpus, seed=seed)


def infinite_iommu_config(num_gpus: int = 4, seed: int = 1) -> SystemConfig:
    """Baseline with an unbounded IOMMU TLB (Figure 3's upper bound)."""
    config = baseline_config(num_gpus=num_gpus, seed=seed)
    return config.derive(iommu=replace(config.iommu, infinite_tlb=True))


def small_iommu_config(num_gpus: int = 4, seed: int = 1) -> SystemConfig:
    """The §5.3 sensitivity point: a 2048-entry IOMMU TLB (NeuMMU-sized)."""
    config = baseline_config(num_gpus=num_gpus, seed=seed)
    small_tlb = TLBLevelConfig(num_entries=2048, associativity=64, lookup_latency=200)
    return config.derive(iommu=replace(config.iommu, tlb=small_tlb))


def large_page_config(num_gpus: int = 4, seed: int = 1) -> SystemConfig:
    """Figure 24: 2 MB pages.  The footprint collapses onto far fewer VPNs
    and walks shorten by one radix level."""
    return baseline_config(num_gpus=num_gpus, seed=seed).derive(page_size=PAGE_2MB)


def local_page_table_config(num_gpus: int = 4, seed: int = 1) -> SystemConfig:
    """Figure 23: each GPU walks its own device-memory page table; only
    local page faults travel to the IOMMU."""
    return baseline_config(num_gpus=num_gpus, seed=seed).derive(local_page_tables=True)


def scaled_config(
    num_gpus: int, seed: int = 1, *, scale_tracker: bool = False
) -> SystemConfig:
    """Figure 21: 8- and 16-GPU systems.

    By default the tracker keeps its 2048-entry hardware budget and divides
    it across more GPUs, as the paper's equal-partitioning rule dictates —
    at 16 GPUs that leaves 128 entries tracking each 512-entry L2 TLB.
    ``scale_tracker=True`` grows the budget proportionally (512 entries per
    GPU), the provisioning the paper's 16-GPU results imply.
    """
    config = baseline_config(num_gpus=num_gpus, seed=seed)
    if scale_tracker:
        per_gpu = config.tracker.total_entries // 4  # the 4-GPU baseline share
        config = config.derive(
            tracker=replace(config.tracker, total_entries=per_gpu * num_gpus)
        )
    return config


def remote_latency_config(scale: float, num_gpus: int = 4, seed: int = 1) -> SystemConfig:
    """Figure 20: scale the remote-L2-probe latency by ``scale``."""
    config = baseline_config(num_gpus=num_gpus, seed=seed)
    return config.derive(
        interconnect=replace(config.interconnect, remote_latency_scale=scale)
    )


def dws_config(num_gpus: int = 4, seed: int = 1) -> SystemConfig:
    """Section 5.6: page-walk stealing (DWS) walker scheduling."""
    config = baseline_config(num_gpus=num_gpus, seed=seed)
    return config.derive(iommu=replace(config.iommu, walker_scheduler="dws"))


def spill_budget_config(budget: int, num_gpus: int = 4, seed: int = 1) -> SystemConfig:
    """Figure 19: the spilling counter N (1 in the design, 2 in the study)."""
    return baseline_config(num_gpus=num_gpus, seed=seed).derive(spill_budget=budget)


#: Named preset registry: the configurations a user can ask for *by name*
#: (the CLI ``--config`` flag and the ``repro serve`` request schema both
#: resolve through this table, so client and server agree on what a name
#: means — which is what makes server-side fingerprints match local ones).
CONFIG_PRESETS: dict[str, Callable[[], SystemConfig]] = {
    "baseline": baseline_config,
    "infinite-iommu": infinite_iommu_config,
    "small-iommu": small_iommu_config,
    "large-pages": large_page_config,
    "local-page-tables": local_page_table_config,
    "dws": dws_config,
    "8gpu": lambda: scaled_config(8),
    "16gpu": lambda: scaled_config(16),
}


def resolve_preset(name: str) -> SystemConfig:
    """Build the named preset; raises :class:`KeyError` with the valid
    names when ``name`` is unknown."""
    try:
        builder = CONFIG_PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown config preset {name!r}; choose from {sorted(CONFIG_PRESETS)}"
        ) from None
    return builder()
