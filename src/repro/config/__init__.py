"""System configuration dataclasses and evaluation presets."""

from repro.config.presets import (
    baseline_config,
    dws_config,
    infinite_iommu_config,
    large_page_config,
    local_page_table_config,
    remote_latency_config,
    scaled_config,
    small_iommu_config,
    spill_budget_config,
)
from repro.config.system import (
    PAGE_2MB,
    PAGE_4KB,
    GPUConfig,
    IOMMUConfig,
    InterconnectConfig,
    SystemConfig,
    TLBLevelConfig,
    TrackerConfig,
)

__all__ = [
    "PAGE_2MB",
    "PAGE_4KB",
    "GPUConfig",
    "IOMMUConfig",
    "InterconnectConfig",
    "SystemConfig",
    "TLBLevelConfig",
    "TrackerConfig",
    "baseline_config",
    "dws_config",
    "infinite_iommu_config",
    "large_page_config",
    "local_page_table_config",
    "remote_latency_config",
    "scaled_config",
    "small_iommu_config",
    "spill_budget_config",
]
