"""Cross-backend equivalence: the fast paths must be bit-identical to
the event engine.

The functional and vectorized backends (:mod:`repro.sim.backends`) are
only allowed to exist because every observable they produce — hit/miss/
eviction/spill counters, sharing degrees, latency means,
``total_cycles``, ``events_executed`` — equals the event engine's
exactly.  These tests pin that contract over randomized workloads, GPU
counts, seeds, and both supported policies, plus real traced
applications; ``scripts/check_fidelity.py`` extends the same check to
the full bench families, and ``tests/sim/test_sharding.py`` extends it
across shard counts.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.presets import baseline_config
from repro.config.system import (
    GPUConfig,
    IOMMUConfig,
    InterconnectConfig,
    SystemConfig,
    TLBLevelConfig,
    TrackerConfig,
)
from repro.sim.backends import BackendUnsupported, run_functional
from repro.sim.driver import run_single_app, simulate
from repro.workloads.multi_app import build_single_app_workload
from repro.workloads.trace import CUStream, Placement, Workload


def tiny_config(num_gpus=2, seed=1):
    return SystemConfig(
        num_gpus=num_gpus,
        gpu=GPUConfig(
            num_cus=2,
            slots_per_cu=2,
            l1_tlb=TLBLevelConfig(num_entries=2, associativity=2, lookup_latency=1),
            l2_tlb=TLBLevelConfig(num_entries=8, associativity=4, lookup_latency=3),
        ),
        iommu=IOMMUConfig(
            tlb=TLBLevelConfig(num_entries=16, associativity=4, lookup_latency=10),
            num_walkers=2,
            walker_threads=2,
            walk_latency=40,
        ),
        tracker=TrackerConfig(total_entries=32, kind="cuckoo"),
        interconnect=InterconnectConfig(host_link_latency=15, peer_link_latency=5),
        seed=seed,
    )


def build_workload(gpu_vpns, kind):
    placements = []
    footprint = set()
    for gpu_id, vpns in enumerate(gpu_vpns):
        if not vpns:
            continue
        n = len(vpns)
        placements.append(
            Placement(
                gpu_id=gpu_id, pid=1, app_name="rand", cu_ids=[0],
                streams=[CUStream(
                    np.array(vpns, dtype=np.int64),
                    np.full(n, 37, dtype=np.int64),
                    np.ones(n, dtype=np.int64),
                )],
            )
        )
        footprint.update(vpns)
    return Workload(
        name="rand", kind=kind, placements=placements, app_names={1: "rand"},
        footprints={1: np.array(sorted(footprint), dtype=np.int64)},
    )


@st.composite
def scenarios(draw):
    num_gpus = draw(st.integers(2, 4))
    gpu_vpns = [
        draw(st.lists(st.integers(0, 30), min_size=0, max_size=40))
        for _ in range(num_gpus)
    ]
    if not any(gpu_vpns):
        gpu_vpns[0] = [0]
    seed = draw(st.integers(0, 3))
    return num_gpus, gpu_vpns, seed


@pytest.mark.parametrize("backend", ["functional", "vectorized"])
@pytest.mark.parametrize("policy", ["baseline", "least-tlb"])
@pytest.mark.parametrize("kind", ["single", "multi"])
@given(scenario=scenarios())
@settings(max_examples=20, deadline=None)
def test_fast_backends_are_bit_identical(backend, policy, kind, scenario):
    num_gpus, gpu_vpns, seed = scenario
    workload = build_workload(gpu_vpns, kind)
    config = tiny_config(num_gpus=num_gpus, seed=seed)
    ref = simulate(config, workload, policy, max_cycles=5_000_000)
    fast = simulate(
        config, workload, policy, backend=backend, max_cycles=5_000_000
    )
    assert dataclasses.asdict(fast) == dataclasses.asdict(ref)


@pytest.mark.parametrize("backend", ["functional", "vectorized"])
@pytest.mark.parametrize("policy", ["baseline", "least-tlb"])
def test_real_trace_is_bit_identical(backend, policy):
    ref = run_single_app("MM", policy=policy, scale=0.02)
    fast = run_single_app("MM", policy=policy, scale=0.02, backend=backend)
    assert dataclasses.asdict(fast) == dataclasses.asdict(ref)


class TestScopeRejections:
    """Everything outside the replayed scope must refuse loudly, never
    silently diverge."""

    def _workload(self):
        return build_workload([[0, 1], [2]], "single")

    def test_unsupported_policy(self):
        with pytest.raises(BackendUnsupported, match="policy 'tlb-probing'"):
            run_functional(tiny_config(), self._workload(), "tlb-probing")

    def test_vectorized_shares_the_scope_checks(self):
        from repro.sim.backends import run_vectorized

        with pytest.raises(BackendUnsupported, match="policy 'tlb-probing'"):
            run_vectorized(tiny_config(), self._workload(), "tlb-probing")

    def test_local_page_tables(self):
        config = dataclasses.replace(tiny_config(), local_page_tables=True)
        with pytest.raises(BackendUnsupported, match="local page tables"):
            run_functional(config, self._workload(), "baseline")

    def test_non_lru_replacement(self):
        base = tiny_config()
        config = dataclasses.replace(
            base,
            gpu=dataclasses.replace(
                base.gpu,
                l2_tlb=TLBLevelConfig(
                    num_entries=8, associativity=4, lookup_latency=3,
                    replacement="fifo",
                ),
            ),
        )
        with pytest.raises(BackendUnsupported, match="only LRU"):
            run_functional(config, self._workload(), "baseline")

    def test_unknown_system_option(self):
        with pytest.raises(BackendUnsupported, match="system option"):
            run_functional(
                tiny_config(), self._workload(), "baseline", shields="up"
            )

    def test_non_default_system_option(self):
        with pytest.raises(BackendUnsupported, match="snapshot_interval"):
            run_functional(
                tiny_config(), self._workload(), "baseline",
                snapshot_interval=100,
            )

    def test_default_valued_options_accepted(self):
        result = run_functional(
            tiny_config(), self._workload(), "baseline",
            faults=None, check_invariants=False, watchdog=False,
        )
        assert result.events_executed > 0

    def test_baseline_config_in_scope(self):
        # The paper's default configuration must stay inside the fast
        # path's scope — the benchmarks rely on it.
        workload = build_single_app_workload("FIR", baseline_config(), scale=0.02)
        result = run_functional(baseline_config(), workload, "least-tlb")
        assert result.events_executed > 0
