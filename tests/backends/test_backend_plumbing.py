"""Backend selection plumbing: validation, cache keys, and job specs.

The backend choice must be part of every simulation's identity — a
functional-backend result may never be served from (or stored into) an
event-engine cache entry, even though the two are cross-validated
bit-identical, so a fidelity regression can neither poison nor hide
behind the cache.
"""

import pytest

from repro.config.presets import baseline_config
from repro.sim.backends import BACKENDS, validate_backend
from repro.sim.cache import fingerprint_digest, run_fingerprint
from repro.sim.parallel import JobSpec, expand_matrix


class TestValidateBackend:
    def test_known_backends(self):
        assert BACKENDS == ("event", "functional", "vectorized")
        for name in BACKENDS:
            assert validate_backend(name) == name

    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend 'quantum'"):
            validate_backend("quantum")


class TestFingerprint:
    def _fingerprint(self, backend):
        return run_fingerprint(
            kind="single", workload="MM", policy="baseline",
            config=baseline_config(), scale=0.05, seed=None, backend=backend,
        )

    def test_backend_is_keyed(self):
        digests = set()
        for backend in ("event", "functional", "vectorized"):
            fingerprint = self._fingerprint(backend)
            assert fingerprint["backend"] == backend
            digests.add(fingerprint_digest(fingerprint))
        assert len(digests) == 3

    def test_shards_are_keyed(self):
        unsharded = run_fingerprint(
            kind="single", workload="MM", policy="baseline",
            config=baseline_config(), scale=0.05, seed=None, shards=1,
        )
        sharded = run_fingerprint(
            kind="single", workload="MM", policy="baseline",
            config=baseline_config(), scale=0.05, seed=None, shards=4,
        )
        assert unsharded["shards"] == 1
        assert sharded["shards"] == 4
        assert fingerprint_digest(unsharded) != fingerprint_digest(sharded)

    def test_default_shards_is_one(self):
        fingerprint = run_fingerprint(
            kind="single", workload="MM", policy="baseline",
            config=baseline_config(), scale=0.05, seed=None,
        )
        assert fingerprint["shards"] == 1

    def test_default_backend_is_event(self):
        fingerprint = run_fingerprint(
            kind="single", workload="MM", policy="baseline",
            config=baseline_config(), scale=0.05, seed=None,
        )
        assert fingerprint == self._fingerprint("event")


class TestJobSpec:
    def _spec(self, scale=0.05, **kwargs):
        return JobSpec(kind="single", workload="MM", policy="baseline",
                       scale=scale, **kwargs)

    def test_default_backend(self):
        spec = self._spec()
        assert spec.backend == "event"
        assert "+functional" not in spec.label
        assert spec.fingerprint()["backend"] == "event"

    def test_functional_backend_label_and_fingerprint(self):
        spec = self._spec(backend="functional")
        assert spec.label.endswith("+functional")
        assert spec.fingerprint()["backend"] == "functional"

    def test_invalid_backend_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown backend"):
            self._spec(backend="quantum")

    def test_execute_routes_to_functional(self):
        import dataclasses

        ref = self._spec(scale=0.02).execute()
        fast = self._spec(scale=0.02, backend="functional").execute()
        assert dataclasses.asdict(fast) == dataclasses.asdict(ref)

    def test_default_shards(self):
        spec = self._spec()
        assert spec.shards == 1
        assert "+s" not in spec.label
        assert spec.fingerprint()["shards"] == 1

    def test_sharded_label_and_fingerprint(self):
        spec = self._spec(shards=4)
        assert spec.label.endswith("+s4")
        assert spec.fingerprint()["shards"] == 4

    def test_invalid_shards_rejected_at_construction(self):
        with pytest.raises(ValueError, match="shards"):
            self._spec(shards=0)

    def test_execute_routes_to_sharded(self):
        result = self._spec(scale=0.02, shards=2).execute()
        assert result.metadata["shards"] == 2
        assert result.events_executed > 0


class TestExpandMatrix:
    def test_backend_applied_to_every_spec(self):
        pairs = expand_matrix(
            ["fig02_baseline_hit_rates"], scale=0.05, backend="functional"
        )
        assert pairs
        assert all(spec.backend == "functional" for _, spec in pairs)

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            expand_matrix(["fig02_baseline_hit_rates"], scale=0.05,
                          backend="quantum")

    def test_shards_applied_to_every_spec(self):
        pairs = expand_matrix(
            ["fig02_baseline_hit_rates"], scale=0.05, shards=2
        )
        assert pairs
        assert all(spec.shards == 2 for _, spec in pairs)

    def test_invalid_shards_rejected(self):
        with pytest.raises(ValueError, match="shards"):
            expand_matrix(["fig02_baseline_hit_rates"], scale=0.05, shards=0)
