"""Differential equivalence of the flat cuckoo tracker mirror.

``_FlatCuckooTracker`` replays the Local TLB Tracker's cuckoo filters
over flat fingerprint lists, memoised hash geometry, and direct
``getrandbits`` draws in place of ``Random.choice``/``Random.randrange``.
That last substitution leans on CPython's ``_randbelow_with_getrandbits``
rejection loop, so these tests pin the full equivalence — bucket-for-
bucket contents, query results, and stats counters — against the object
model under randomized operation streams.  An interpreter that changed
``_randbelow`` would fail here rather than silently diverge.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.system import TrackerConfig
from repro.core.tracker import LocalTLBTracker
from repro.sim.backends.functional import _FlatCuckooTracker

#: Deliberately tiny filters so register streams overflow buckets and
#: exercise the cuckoo relocation (RNG) path, not just direct inserts.
SMALL = TrackerConfig(total_entries=16, bucket_size=2, fingerprint_bits=4,
                      kind="cuckoo")

ops_st = st.lists(
    st.tuples(
        st.sampled_from(["register", "unregister", "query"]),
        st.integers(0, 1),      # gpu_id
        st.integers(1, 2),      # pid
        st.integers(0, 40),     # vpn
    ),
    min_size=1,
    max_size=120,
)


def reference_buckets(tracker: LocalTLBTracker, gpu_id: int):
    filt = tracker._filters[gpu_id]
    return [list(bucket) for bucket in filt._buckets]


@given(ops=ops_st, seed=st.integers(0, 7))
@settings(max_examples=60, deadline=None)
def test_flat_tracker_matches_object_model(ops, seed):
    ref = LocalTLBTracker(SMALL, num_gpus=2, seed=seed)
    flat = _FlatCuckooTracker(SMALL, num_gpus=2, seed=seed)
    for op, gpu_id, pid, vpn in ops:
        if op == "register":
            ref.register(gpu_id, pid, vpn)
            flat.register(gpu_id, pid, vpn)
        elif op == "unregister":
            ref.unregister(gpu_id, pid, vpn)
            flat.unregister(gpu_id, pid, vpn)
        else:
            assert flat.query(pid, vpn) == ref.query(pid, vpn)
    # Final state: bucket contents (order included — it decides future
    # kicks and deletes) and every stats counter.
    for gpu_id in range(2):
        assert flat.buckets[gpu_id] == reference_buckets(ref, gpu_id)
    assert flat.registrations == ref.stats.registrations
    assert flat.unregistrations == ref.stats.unregistrations
    assert flat.queries == ref.stats.queries
    assert flat.positives == ref.stats.positives
    assert flat.multi_positives == ref.stats.multi_positives
    # Post-state queries agree across the whole key domain.
    for pid in (1, 2):
        for vpn in range(41):
            assert flat.query(pid, vpn) == ref.query(pid, vpn)


def test_partition_sizing_matches_tracker():
    # 100 entries over 3 GPUs with bucket size 4 → 32 per partition
    # (rounded down to a bucket multiple), identically on both sides.
    config = TrackerConfig(total_entries=100, bucket_size=4,
                           fingerprint_bits=6, kind="cuckoo")
    ref = LocalTLBTracker(config, num_gpus=3, seed=0)
    flat = _FlatCuckooTracker(config, num_gpus=3, seed=0)
    assert flat.num_buckets == len(ref._filters[0]._buckets)
    assert flat.bucket_size == config.bucket_size
