"""Unit tests for the least-TLB policy mechanics beyond the walk-throughs."""

import numpy as np
import pytest

from repro.sim.system import MultiGPUSystem
from repro.workloads.trace import CUStream, Placement, Workload


def stream(vpns, gap=5000):
    n = len(vpns)
    return CUStream(
        vpns=np.array(vpns, dtype=np.int64),
        gaps=np.full(n, gap, dtype=np.int64),
        repeats=np.ones(n, dtype=np.int64),
    )


def workload_on(gpu_streams, kind="single", pids=None):
    placements = []
    app_names = {}
    footprint = set()
    for gpu_id, vpns in gpu_streams.items():
        pid = 1 if pids is None else pids[gpu_id]
        placements.append(
            Placement(gpu_id=gpu_id, pid=pid, app_name=f"app{pid}", cu_ids=[0],
                      streams=[stream(vpns)])
        )
        app_names[pid] = f"app{pid}"
        footprint.update(vpns)
    footprints = {pid: np.array(sorted(footprint), dtype=np.int64) for pid in app_names}
    return Workload(name="unit", kind=kind, placements=placements,
                    app_names=app_names, footprints=footprints)


class TestModeResolution:
    def test_mode_follows_workload_kind(self, tiny_config):
        single = MultiGPUSystem(tiny_config, workload_on({0: [1]}, kind="single"), "least-tlb")
        assert single.policy.mode == "single"
        assert single.policy.spilling is False
        multi = MultiGPUSystem(tiny_config, workload_on({0: [1]}, kind="multi"), "least-tlb")
        assert multi.policy.mode == "multi"
        assert multi.policy.spilling is True

    def test_explicit_mode_override(self, tiny_config):
        system = MultiGPUSystem(
            tiny_config, workload_on({0: [1]}, kind="single"), "least-tlb",
            policy_options={"mode": "multi"},
        )
        assert system.policy.mode == "multi"

    def test_invalid_mode_rejected(self, tiny_config):
        with pytest.raises(ValueError, match="mode"):
            MultiGPUSystem(
                tiny_config, workload_on({0: [1]}), "least-tlb",
                policy_options={"mode": "both"},
            )


class TestLeastInclusiveInvariant:
    def test_walk_fill_does_not_populate_iommu(self, tiny_config):
        system = MultiGPUSystem(tiny_config, workload_on({0: [1, 2, 3]}), "least-tlb")
        system.run()
        # All three pages live in GPU0's L2; none were inserted into the
        # IOMMU TLB (L2 has room, so no victims arrived either).
        assert len(system.iommu.tlb) == 0
        assert system.gpus[0].l2_tlb.contains(1, 1)

    def test_l2_victims_feed_iommu(self, tiny_config):
        # 33 distinct pages overflow the 32-entry L2 by one.
        system = MultiGPUSystem(
            tiny_config, workload_on({0: list(range(33))}), "least-tlb"
        )
        system.run()
        assert len(system.iommu.tlb) == 1
        assert len(system.gpus[0].l2_tlb) == 32

    def test_iommu_hit_moves_entry(self, tiny_config):
        # GPU0 overflows its L2 so one victim reaches the IOMMU TLB; GPU1
        # then requests that victim: the entry must move out of the IOMMU.
        vpns0 = list(range(33))
        system = MultiGPUSystem(
            tiny_config,
            workload_on({0: vpns0, 1: []} | {}, kind="single") if False else
            workload_on({0: vpns0}, kind="single"),
            "least-tlb",
        )
        system.run()
        (victim_entry,) = list(system.iommu.tlb.iter_entries())
        victim = victim_entry.vpn
        follow = MultiGPUSystem(
            tiny_config, workload_on({0: vpns0, 1: [victim]}, kind="single"), "least-tlb"
        )
        follow.run()
        assert follow.gpus[1].l2_tlb.contains(1, victim)


class TestTrackerMaintenance:
    def test_fills_register_and_evictions_unregister(self, tiny_config):
        system = MultiGPUSystem(tiny_config, workload_on({0: list(range(33))}), "least-tlb")
        system.run()
        tracker = system.policy.tracker
        resident = {e.vpn for e in system.gpus[0].l2_tlb.iter_entries()}
        evicted = set(range(33)) - resident
        for vpn in resident:
            assert 0 in tracker.query(1, vpn)
        for vpn in evicted:
            assert 0 not in tracker.query(1, vpn)


class TestRemoteProbeConfig:
    def test_remote_probes_disabled(self, tiny_config):
        # GPU0 holds page 7; GPU1 requests it.  With probes disabled the
        # request must be served by a walk instead.
        system = MultiGPUSystem(
            tiny_config,
            workload_on({0: [7], 1: [7]}, kind="single"),
            "least-tlb",
            policy_options={"remote_probes": False},
        )
        result = system.run()
        assert system.iommu.stats["remote_hits"] == 0
        assert result.apps[1].counters["served_walk"] == 2

    def test_remote_only_serves_hit_without_any_walk(self, tiny_config):
        # race_ptw=False: the walk starts only if the probe misses.  GPU1's
        # filler access staggers it behind GPU0, so GPU0 holds page 7 by
        # the time GPU1 asks for it.
        system = MultiGPUSystem(
            tiny_config,
            workload_on({0: [7], 1: [99, 7]}, kind="single"),
            "least-tlb",
            policy_options={"race_ptw": False},
        )
        system.run()
        # The genuine hit is served remotely with no racing walk at all.
        assert system.iommu.stats["remote_hits"] == 1
        assert system.iommu.stats.as_dict().get("walks_wasted", 0) == 0
        # Only pages 7 (GPU0) and 99 (GPU1) were ever walked.
        assert system.iommu.walkers.stats["walks_dispatched"] == 2


class TestSpillBudgetN:
    def test_budget_decrements_per_spill(self, tiny_config):
        from repro.structures.tlb import TLBEntry

        config = tiny_config.derive(spill_budget=2)
        system = MultiGPUSystem(config, workload_on({0: [1]}, kind="multi"), "least-tlb")
        victim = TLBEntry(1, 500, 500, spill_budget=2, owner_gpu=3)
        system.policy.on_iommu_tlb_evicted(victim)
        system.queue.run()
        assert system.iommu.stats["spills"] == 1
        spilled = [
            e for gpu in system.gpus for e in gpu.l2_tlb.iter_entries() if e.vpn == 500
        ]
        assert spilled and spilled[0].spill_budget == 1

    def test_exhausted_budget_drops_victim(self, tiny_config):
        from repro.structures.tlb import TLBEntry

        system = MultiGPUSystem(
            tiny_config, workload_on({0: [1]}, kind="multi"), "least-tlb"
        )
        victim = TLBEntry(1, 500, 500, spill_budget=0, owner_gpu=3)
        system.policy.on_iommu_tlb_evicted(victim)
        system.queue.run()
        assert system.iommu.stats["spills"] == 0
        assert all(
            not gpu.l2_tlb.contains(1, 500) for gpu in system.gpus
        )
