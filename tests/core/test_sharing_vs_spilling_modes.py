"""Behavioural contrasts between Algorithm 1 (sharing) and Algorithm 2
(spilling) on identical traffic."""

import numpy as np

from repro.sim.system import MultiGPUSystem
from repro.workloads.trace import CUStream, Placement, Workload


def two_gpu_share(kind):
    """GPU0 touches page 7; GPU1 later requests it (plus a stagger page)."""
    placements = [
        Placement(gpu_id=0, pid=1, app_name="x", cu_ids=[0],
                  streams=[CUStream(np.array([7]), np.array([5000]), np.array([1]))]),
        Placement(gpu_id=1, pid=1, app_name="x", cu_ids=[0],
                  streams=[CUStream(np.array([99, 7]), np.array([5000, 5000]),
                                    np.array([1, 1]))]),
    ]
    return Workload(name="x", kind=kind, placements=placements,
                    app_names={1: "x"}, footprints={1: np.array([7, 99])})


def run(tiny_config, kind, mode):
    system = MultiGPUSystem(
        tiny_config, two_gpu_share(kind), "least-tlb", policy_options={"mode": mode}
    )
    system.run()
    return system


class TestRemoteHitSemantics:
    def test_sharing_mode_keeps_both_copies(self, tiny_config):
        system = run(tiny_config, "single", "single")
        assert system.iommu.stats["remote_hits"] == 1
        # Algorithm 1: the provider keeps its copy; both L2s hold page 7.
        assert system.gpus[0].l2_tlb.contains(1, 7)
        assert system.gpus[1].l2_tlb.contains(1, 7)
        tracker = system.policy.tracker
        assert set(tracker.query(1, 7)) == {0, 1}

    def test_spilling_mode_migrates_the_entry(self, tiny_config):
        system = run(tiny_config, "multi", "multi")
        assert system.iommu.stats["remote_hits"] == 1
        # Algorithm 2: no inter-application sharing — the entry moves.
        assert not system.gpus[0].l2_tlb.contains(1, 7)
        assert system.gpus[1].l2_tlb.contains(1, 7)
        assert system.policy.tracker.query(1, 7) == [1]


class TestIOMMUVictimSemantics:
    def flood(self, tiny_config, mode):
        # Enough distinct pages to overflow L2 (32) and IOMMU (128).
        pages = list(range(400))
        placements = [
            Placement(gpu_id=0, pid=1, app_name="x", cu_ids=[0],
                      streams=[CUStream(np.array(pages), np.full(400, 800),
                                        np.ones(400, dtype=np.int64))]),
        ]
        workload = Workload(
            name="x", kind="multi", placements=placements,
            app_names={1: "x"}, footprints={1: np.array(pages)},
        )
        system = MultiGPUSystem(
            tiny_config, workload, "least-tlb", policy_options={"mode": mode}
        )
        system.run()
        return system

    def test_single_mode_drops_iommu_victims(self, tiny_config):
        system = self.flood(tiny_config, "single")
        assert system.iommu.stats.as_dict().get("spills", 0) == 0
        # IOMMU TLB sits at capacity, the overflow was discarded.
        assert len(system.iommu.tlb) == tiny_config.iommu.tlb.num_entries

    def test_multi_mode_spills_iommu_victims(self, tiny_config):
        system = self.flood(tiny_config, "multi")
        assert system.iommu.stats["spills"] > 0
        # Victims landed in the idle GPUs' L2 TLBs.
        spilled_somewhere = any(
            len(system.gpus[g].l2_tlb) > 0 for g in (1, 2, 3)
        )
        assert spilled_somewhere
