"""Unit tests for the hardware-overhead model (Section 4.3)."""

import pytest

from repro.config.presets import baseline_config, scaled_config
from repro.core.overhead import counter_bits_needed, estimate_overhead


def test_counter_bits():
    assert counter_bits_needed(0) == 1
    assert counter_bits_needed(1) == 1
    assert counter_bits_needed(255) == 8
    assert counter_bits_needed(4096) == 13


def test_counter_bits_negative():
    with pytest.raises(ValueError):
        counter_bits_needed(-1)


def test_paper_configuration_arithmetic():
    report = estimate_overhead(baseline_config())
    # 2048 fingerprints x 6 bits = 1.5 KB of tracker state (the paper's
    # 1.08 KB corresponds to ~4.2-bit fingerprints; same order).
    assert report.tracker_bytes == pytest.approx(2048 * 6 / 8)
    # Four GPUs x >= 8 bits of Eviction Counter (the paper says 32 bits).
    assert report.eviction_counter_bits == 4 * 13
    # One spill bit per IOMMU TLB entry at N=1.
    assert report.spill_bit_bits == 4096
    assert 0 < report.area_overhead_fraction < 0.05


def test_overhead_scales_with_gpu_count():
    small = estimate_overhead(baseline_config())
    large = estimate_overhead(scaled_config(16))
    assert large.eviction_counter_bits == 4 * small.eviction_counter_bits
    # The tracker keeps its fixed hardware budget.
    assert large.tracker_bytes == small.tracker_bytes


def test_spill_budget_widens_spill_field():
    config = baseline_config().derive(spill_budget=3)
    report = estimate_overhead(config)
    assert report.spill_bit_bits == 4096 * 2  # ceil(log2(4)) bits


def test_summary_is_human_readable():
    text = estimate_overhead(baseline_config()).summary()
    assert "tracker" in text
    assert "%" in text
