"""Unit tests for the Local TLB Tracker."""

import pytest

from repro.config.system import TrackerConfig
from repro.core.tracker import LocalTLBTracker


def make_tracker(kind="perfect", total=256, num_gpus=4, **kwargs):
    config = TrackerConfig(total_entries=total, kind=kind, **kwargs)
    return LocalTLBTracker(config, num_gpus=num_gpus)


class TestPerfect:
    def test_register_query_unregister(self):
        tracker = make_tracker()
        tracker.register(2, 1, 100)
        assert tracker.query(1, 100) == [2]
        tracker.unregister(2, 1, 100)
        assert tracker.query(1, 100) == []

    def test_multiple_gpus_positive(self):
        tracker = make_tracker()
        tracker.register(0, 1, 100)
        tracker.register(3, 1, 100)
        assert tracker.query(1, 100) == [0, 3]
        assert tracker.stats.multi_positives == 1

    def test_partitions_are_independent(self):
        tracker = make_tracker()
        tracker.register(0, 1, 100)
        tracker.unregister(1, 1, 100)  # wrong partition: no effect
        assert tracker.query(1, 100) == [0]

    def test_clear_one_partition(self):
        tracker = make_tracker()
        tracker.register(0, 1, 1)
        tracker.register(1, 1, 2)
        tracker.clear(0)
        assert tracker.query(1, 1) == []
        assert tracker.query(1, 2) == [1]

    def test_clear_all(self):
        tracker = make_tracker()
        tracker.register(0, 1, 1)
        tracker.register(1, 1, 2)
        tracker.clear()
        assert tracker.query(1, 1) == []
        assert tracker.query(1, 2) == []

    def test_stats_counted(self):
        tracker = make_tracker()
        tracker.register(0, 1, 1)
        tracker.query(1, 1)
        tracker.query(1, 2)
        assert tracker.stats.registrations == 1
        assert tracker.stats.queries == 2
        assert tracker.stats.positives == 1


class TestCuckooBacked:
    def test_roundtrip(self):
        tracker = make_tracker(kind="cuckoo", total=512)
        tracker.register(1, 5, 42)
        assert 1 in tracker.query(5, 42)
        tracker.unregister(1, 5, 42)
        assert 1 not in tracker.query(5, 42)

    def test_paper_budget_size(self):
        """The paper's configuration: 2048 slots split across 4 GPUs at
        ~4-6 fingerprint bits lands near its 1.08 KB estimate."""
        tracker = make_tracker(kind="cuckoo", total=2048, fingerprint_bits=6)
        assert tracker.size_bytes() == pytest.approx(2048 * 6 / 8)
        assert tracker.occupancy(0) == 0

    def test_false_positive_rate_bounded(self):
        tracker = make_tracker(kind="cuckoo", total=2048, fingerprint_bits=6)
        for vpn in range(480):
            tracker.register(0, 1, vpn)
        absent_hits = sum(
            bool(tracker.query(1, vpn)) for vpn in range(10_000, 11_000)
        )
        # The paper tolerates ~0.2; anything degenerate would break the
        # remote-probe protocol's economics.
        assert absent_hits / 1000 < 0.4


class TestBloomBacked:
    def test_roundtrip(self):
        tracker = make_tracker(kind="bloom", total=512)
        tracker.register(2, 1, 7)
        assert 2 in tracker.query(1, 7)
        tracker.unregister(2, 1, 7)
        assert 2 not in tracker.query(1, 7)


class TestValidation:
    def test_bad_gpu_count(self):
        with pytest.raises(ValueError):
            LocalTLBTracker(TrackerConfig(), num_gpus=0)

    def test_bad_kind(self):
        with pytest.raises(ValueError):
            TrackerConfig(kind="magic")
