"""Unit tests for the device-aware (QoS) least-TLB extension."""

import numpy as np
import pytest

from repro.sim.system import MultiGPUSystem
from repro.structures.tlb import TLBEntry
from repro.workloads.trace import CUStream, Placement, Workload


def workload(gpu_vpns, kind="multi"):
    placements = []
    footprint = set()
    for gpu_id, vpns in gpu_vpns.items():
        n = len(vpns)
        placements.append(
            Placement(
                gpu_id=gpu_id, pid=1, app_name="x", cu_ids=[0],
                streams=[CUStream(
                    np.array(vpns, dtype=np.int64),
                    np.full(n, 5000, dtype=np.int64),
                    np.ones(n, dtype=np.int64),
                )],
            )
        )
        footprint.update(vpns)
    return Workload(name="x", kind=kind, placements=placements,
                    app_names={1: "x"},
                    footprints={1: np.array(sorted(footprint), dtype=np.int64)})


def build(tiny_config, weights=None, **options):
    opts = dict(options)
    if weights is not None:
        opts["qos_weights"] = weights
    return MultiGPUSystem(
        tiny_config, workload({0: [1]}), "least-tlb-qos", policy_options=opts
    )


class TestValidation:
    def test_wrong_weight_count(self, tiny_config):
        with pytest.raises(ValueError, match="QoS weights"):
            build(tiny_config, weights=[1.0, 2.0])

    def test_nonpositive_weight(self, tiny_config):
        with pytest.raises(ValueError, match="positive"):
            build(tiny_config, weights=[1.0, 0.0, 1.0, 1.0])

    def test_default_weights_uniform(self, tiny_config):
        system = build(tiny_config)
        assert system.policy.qos_weights == [1.0] * 4


class TestReceiverSelection:
    def test_uniform_weights_match_plain_least_tlb(self, tiny_config):
        qos = build(tiny_config)
        qos.iommu.eviction_counters = [3, 1, 3, 1]
        picks = [qos.policy._select_receiver() for _ in range(4)]
        plain = MultiGPUSystem(
            tiny_config, workload({0: [1]}), "least-tlb"
        )
        plain.iommu.eviction_counters = [3, 1, 3, 1]
        plain_picks = [plain.policy._select_receiver() for _ in range(4)]
        assert picks == plain_picks

    def test_heavy_device_avoided(self, tiny_config):
        # Equal counters: spills must land on the lightest devices.
        system = build(tiny_config, weights=[10.0, 1.0, 10.0, 1.0])
        system.iommu.eviction_counters = [0, 0, 0, 0]
        picks = {system.policy._select_receiver() for _ in range(8)}
        assert picks == {1, 3}

    def test_weighting_trades_off_against_load(self, tiny_config):
        # A light device that is already loaded loses to an idle heavy one.
        system = build(tiny_config, weights=[1.0, 1.0, 1.0, 2.0])
        system.iommu.eviction_counters = [50, 50, 50, 0]
        assert system.policy._select_receiver() == 3


class TestBudgets:
    def test_heavy_owner_gets_extra_budget(self, tiny_config):
        system = build(tiny_config, weights=[4.0, 1.0, 1.0, 1.0])
        assert system.policy._budget_for_owner(0) >= 2
        assert system.policy._budget_for_owner(1) == 1

    def test_uniform_budget_unchanged(self, tiny_config):
        system = build(tiny_config)
        for gpu in range(4):
            assert system.policy._budget_for_owner(gpu) == 1


class TestEndToEnd:
    def test_qos_policy_runs_a_workload(self, tiny_config):
        system = MultiGPUSystem(
            tiny_config,
            workload({0: list(range(50)), 1: list(range(100, 130))}),
            "least-tlb-qos",
            policy_options={"qos_weights": [2.0, 1.0, 1.0, 1.0]},
        )
        result = system.run()
        assert result.apps[1].counters["runs"] == 80
        assert result.policy_name == "least-tlb-qos"

    def test_spill_avoids_heavy_device(self, tiny_config):
        system = MultiGPUSystem(
            tiny_config, workload({0: [1]}), "least-tlb-qos",
            policy_options={"qos_weights": [1.0, 100.0, 1.0, 1.0]},
        )
        # Force spills by evicting entries through the policy.
        for vpn in range(300, 330):
            system.policy.on_iommu_tlb_evicted(
                TLBEntry(1, vpn, vpn, spill_budget=1, owner_gpu=0)
            )
        system.queue.run()
        heavy = system.iommu.stats.as_dict().get("spills_to_gpu1", 0)
        total = system.iommu.stats["spills"]
        assert total == 30
        assert heavy < total / 4
