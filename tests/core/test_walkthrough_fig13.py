"""Golden test: the multi-application spilling walk-through of Figure 13.

Tiny system — two-entry L2 TLBs, an eight-entry IOMMU TLB.  Initially
pages 0x7–0xE sit in the IOMMU TLB with the figure's ownership (0x7, 0x8,
0xE evicted from GPU0; 0x9 from GPU1; 0xA–0xC from GPU2; 0xD from GPU3 —
Eviction Counters [3, 1, 3, 1]), and the L2s hold [0x1,0x2], [0x3],
[0x4,0x5], [0x6].

Steps 1 and 2 are asserted exactly against the figure:

1. GPU2 requests 0x11 → walk fills GPU2 (victim 0x4 → IOMMU) → the IOMMU
   overflow spills its LRU entry 0x7 (spill bit cleared) into the L2 of
   the GPU with the smallest Eviction Counter — GPU1.
2. GPU2 requests 0x7 → tracker hit → remote hit in GPU1; in
   multi-application mode the spilled entry *migrates* (removed from
   GPU1, spill budget restored) — "there is no translation sharing among
   the applications".

Beyond step 2 the figure depends on how Eviction-Counter ties break,
which the paper does not specify; our rotating-priority arbiter makes a
different (equally valid) receiver choice at step 2's spill, so the
remaining steps' exact layout diverges.  The step-4 semantics the figure
demonstrates — a spilled entry is discarded on eviction instead of
re-entering the IOMMU TLB — is asserted directly in
``test_spilled_entry_discarded_on_eviction``.

Note: the figure labels translations with bare addresses; we reproduce it
with a single shared PID while running the policy in multi-application
(spilling) mode.
"""

import numpy as np
import pytest

from repro.config.system import (
    GPUConfig,
    IOMMUConfig,
    InterconnectConfig,
    SystemConfig,
    TLBLevelConfig,
    TrackerConfig,
)
from repro.sim.system import MultiGPUSystem
from repro.structures.tlb import TLBEntry
from repro.workloads.trace import CUStream, Placement, Workload

PID = 1
STEP = 50_000


def walkthrough_config() -> SystemConfig:
    return SystemConfig(
        num_gpus=4,
        gpu=GPUConfig(
            num_cus=1,
            slots_per_cu=1,
            l1_tlb=TLBLevelConfig(num_entries=1, associativity=1, lookup_latency=1),
            l2_tlb=TLBLevelConfig(num_entries=2, associativity=2, lookup_latency=5),
        ),
        iommu=IOMMUConfig(
            tlb=TLBLevelConfig(num_entries=8, associativity=8, lookup_latency=20),
            num_walkers=2,
            walker_threads=2,
            walk_latency=100,
        ),
        tracker=TrackerConfig(total_entries=64, kind="perfect"),
        interconnect=InterconnectConfig(host_link_latency=30, peer_link_latency=10),
        seed=1,
    )


def stream(accesses) -> CUStream:
    """``accesses``: list of (vpn, absolute-ish gap)."""
    vpns = np.array([v for v, _ in accesses], dtype=np.int64)
    gaps = np.array([g for _, g in accesses], dtype=np.int64)
    return CUStream(vpns=vpns, gaps=gaps, repeats=np.ones(len(accesses), dtype=np.int64))


def build_system(per_gpu_accesses) -> MultiGPUSystem:
    placements = [
        Placement(gpu_id=g, pid=PID, app_name="fig13", cu_ids=[0], streams=[stream(acc)])
        for g, acc in per_gpu_accesses.items()
    ]
    workload = Workload(
        name="fig13", kind="multi", placements=placements,
        app_names={PID: "fig13"},
        footprints={PID: np.arange(0x20, dtype=np.int64)},
    )
    system = MultiGPUSystem(
        walkthrough_config(), workload, "least-tlb", policy_options={"mode": "multi"}
    )
    _install_initial_state(system)
    return system


def _install_initial_state(system: MultiGPUSystem) -> None:
    tracker = system.policy.tracker
    l2_contents = {0: [0x1, 0x2], 1: [0x3], 2: [0x4, 0x5], 3: [0x6]}
    for gpu_id, vpns in l2_contents.items():
        for vpn in vpns:  # insertion order == LRU order (oldest first)
            system.gpus[gpu_id].l2_tlb.insert(TLBEntry(PID, vpn, vpn + 0x100))
            tracker.register(gpu_id, PID, vpn)
    iommu_contents = [
        (0x7, 0), (0x8, 0), (0x9, 1), (0xA, 2),
        (0xB, 2), (0xC, 2), (0xD, 3), (0xE, 0),
    ]
    for vpn, owner in iommu_contents:
        system.iommu.insert_tlb(TLBEntry(PID, vpn, vpn + 0x100, owner_gpu=owner))
    assert system.iommu.eviction_counters == [3, 1, 3, 1]


def l2_vpns(system, gpu_id):
    return {entry.vpn for entry in system.gpus[gpu_id].l2_tlb.iter_entries()}


def iommu_vpns(system):
    return {entry.vpn for entry in system.iommu.tlb.iter_entries()}


class TestSteps1And2:
    @pytest.fixture
    def system(self):
        return build_system({2: [(0x11, STEP), (0x7, STEP)]})

    def test_step1_spills_lru_victim_to_min_counter_gpu(self, system):
        for gpu in system.gpus:
            gpu.start()
        system.queue.run(until=2 * STEP - 1)
        # GPU2 filled 0x11, evicting 0x4 into the IOMMU TLB...
        assert l2_vpns(system, 2) == {0x5, 0x11}
        # ...whose overflow spilled LRU entry 0x7 to GPU1 (counter 1, the
        # minimum; tie with GPU3 broken toward the lower scan position).
        assert l2_vpns(system, 1) == {0x3, 0x7}
        assert iommu_vpns(system) == {0x8, 0x9, 0xA, 0xB, 0xC, 0xD, 0xE, 0x4}
        assert system.iommu.stats["spills"] == 1
        spilled = system.gpus[1].l2_tlb.peek(PID, 0x7)
        assert spilled.spill_budget == 0  # the spill bit is now clear

    def test_step2_remote_hit_migrates_spilled_entry(self, system):
        system.run()
        # 0x7 moved from GPU1 (spill host) back to the requesting GPU2.
        assert 0x7 in l2_vpns(system, 2)
        assert 0x7 not in l2_vpns(system, 1)
        assert system.iommu.stats["remote_hits"] == 1
        # Migration restores the spill budget (the paper resets the bit).
        migrated = system.gpus[2].l2_tlb.peek(PID, 0x7)
        assert migrated.spill_budget == 1
        # GPU2's victim 0x5 entered the IOMMU TLB, matching the figure.
        assert 0x5 in iommu_vpns(system)
        # The tracker no longer claims GPU1 holds 0x7.
        assert 1 not in system.policy.tracker.query(PID, 0x7)


class TestSpillBitSemantics:
    def test_spilled_entry_discarded_on_eviction(self):
        """Figure 13's step 4: evicting a spilled (budget-0) entry discards
        it instead of re-entering the IOMMU TLB — the chain-effect bound."""
        system = build_system(
            {2: [(0x11, STEP)], 1: [(0x12, 2 * STEP), (0x13, 3 * STEP)]}
        )
        system.run()
        # Step 1 spilled 0x7 (budget 0) into GPU1; the two subsequent fills
        # on GPU1 evicted it again.
        assert 0x7 not in l2_vpns(system, 1)
        assert 0x7 not in iommu_vpns(system)
        assert system.iommu.stats["spilled_discarded"] >= 1
        # And the tracker forgot it.
        assert system.policy.tracker.query(PID, 0x7) == []

    def test_unspilled_victims_do_reenter_iommu(self):
        system = build_system({1: [(0x12, STEP), (0x13, 2 * STEP)]})
        system.run()
        # GPU1's own 0x3 (never spilled, budget 1) must re-enter the IOMMU
        # TLB when evicted by the new fills.
        assert 0x3 in iommu_vpns(system)


class TestSingleModeDoesNotSpill:
    def test_iommu_victims_dropped_in_single_mode(self):
        system = build_system({2: [(0x11, STEP)]})
        # Force sharing mode: IOMMU TLB overflow victims are dropped
        # (Algorithm 1, lines 27-28), never spilled.
        system.policy.mode = "single"
        system.policy.spilling = False
        system.run()
        assert system.iommu.stats["spills"] == 0
        assert 0x7 not in l2_vpns(system, 1)
        assert len(iommu_vpns(system)) == 8
