"""Golden test: the single-application walk-through of Figure 10.

Tiny system — each GPU's L2 TLB holds one entry, the IOMMU TLB holds four.
Initially GPU_i's L2 holds page ``0x(i+1)`` and the IOMMU TLB is empty
(least-inclusive: walk results fill only the L2).  The figure's steps:

1. GPU0 requests 0x5 → miss everywhere → walk fills GPU0's L2; the
   evicted 0x1 drops into the IOMMU TLB.
2. GPU1 requests 0x1 → IOMMU TLB hit → the entry *moves* to GPU1's L2;
   GPU1's victim 0x2 drops into the IOMMU TLB.
3. GPU2 requests 0x1 → IOMMU miss, tracker positive → remote hit in
   GPU1's L2; the translation is kept in *both* L2s (sharing mode).
4. GPU3 requests 0x1 → remote hit again.

Final state (figure's last row): L2s = [0x5, 0x1, 0x1, 0x1]; IOMMU TLB =
{0x2, 0x3, 0x4}.
"""

import numpy as np
import pytest

from repro.config.system import (
    GPUConfig,
    IOMMUConfig,
    InterconnectConfig,
    SystemConfig,
    TLBLevelConfig,
    TrackerConfig,
)
from repro.sim.system import MultiGPUSystem
from repro.workloads.trace import CUStream, Placement, Workload

PID = 1
STEP = 50_000  # far longer than any translation latency: steps serialize


def walkthrough_config() -> SystemConfig:
    return SystemConfig(
        num_gpus=4,
        gpu=GPUConfig(
            num_cus=1,
            slots_per_cu=1,
            l1_tlb=TLBLevelConfig(num_entries=1, associativity=1, lookup_latency=1),
            l2_tlb=TLBLevelConfig(num_entries=1, associativity=1, lookup_latency=5),
        ),
        iommu=IOMMUConfig(
            tlb=TLBLevelConfig(num_entries=4, associativity=4, lookup_latency=20),
            num_walkers=2,
            walker_threads=2,
            walk_latency=100,
        ),
        tracker=TrackerConfig(total_entries=64, kind="perfect"),
        interconnect=InterconnectConfig(host_link_latency=30, peer_link_latency=10),
        seed=1,
    )


def single_access_stream(vpn: int, at: int) -> CUStream:
    return CUStream(
        vpns=np.array([vpn], dtype=np.int64),
        gaps=np.array([at], dtype=np.int64),
        repeats=np.array([1], dtype=np.int64),
    )


@pytest.fixture
def system() -> MultiGPUSystem:
    # The figure's four steps, serialized in time; kind="single" selects
    # the sharing-mode protocol (Algorithm 1).
    accesses = [(0, 0x5, 1 * STEP), (1, 0x1, 2 * STEP), (2, 0x1, 3 * STEP), (3, 0x1, 4 * STEP)]
    placements = [
        Placement(
            gpu_id=gpu, pid=PID, app_name="fig10", cu_ids=[0],
            streams=[single_access_stream(vpn, at)],
        )
        for gpu, vpn, at in accesses
    ]
    workload = Workload(
        name="fig10", kind="single", placements=placements,
        app_names={PID: "fig10"},
        footprints={PID: np.arange(0x10, dtype=np.int64)},
    )
    sys_ = MultiGPUSystem(walkthrough_config(), workload, "least-tlb")
    # Initial state: GPU_i's L2 holds page i+1 (registered in the tracker);
    # the IOMMU TLB is empty.
    for gpu_id in range(4):
        sys_.gpus[gpu_id].receive_fill(PID, gpu_id + 1, gpu_id + 100, 1)
    assert all(len(sys_.gpus[g].l2_tlb) == 1 for g in range(4))
    assert len(sys_.iommu.tlb) == 0
    return sys_


def l2_vpns(system, gpu_id):
    return {entry.vpn for entry in system.gpus[gpu_id].l2_tlb.iter_entries()}


def iommu_vpns(system):
    return {entry.vpn for entry in system.iommu.tlb.iter_entries()}


def test_final_state_matches_figure(system):
    system.run()
    assert l2_vpns(system, 0) == {0x5}
    assert l2_vpns(system, 1) == {0x1}
    assert l2_vpns(system, 2) == {0x1}
    assert l2_vpns(system, 3) == {0x1}
    assert iommu_vpns(system) == {0x2, 0x3, 0x4}


def test_step_outcomes(system):
    for gpu in system.gpus:
        gpu.start()
    # Step 1: miss everywhere (one walk); victim 0x1 enters the IOMMU TLB.
    system.queue.run(until=2 * STEP - 1)
    assert l2_vpns(system, 0) == {0x5}
    assert iommu_vpns(system) == {0x1}

    # Step 2: IOMMU TLB hit on 0x1 — the entry moves to GPU1's L2.
    system.queue.run(until=3 * STEP - 1)
    assert l2_vpns(system, 1) == {0x1}
    assert 0x1 not in iommu_vpns(system)
    assert iommu_vpns(system) == {0x2}
    assert system.iommu.stats["tlb_hit"] == 1

    # Steps 3 and 4: remote hits; sharing keeps copies in every L2.
    system.run()
    assert system.iommu.stats["remote_hits"] == 2
    assert l2_vpns(system, 1) == {0x1}  # the provider kept its copy


def test_baseline_comparison_misses_more(system):
    """The figure contrasts least-TLB with the mostly-inclusive baseline:
    under the baseline, steps 1 and 2 both miss (0x1 was never in the
    IOMMU TLB because nothing was walked for it)."""
    system.run()
    least_hits = system.iommu.stats["tlb_hit"] + system.iommu.stats["remote_hits"]
    assert least_hits == 3  # steps 2, 3, 4 all served without waiting for a walk
    # Steps 3/4 race a walk against the remote probe (idle walkers dispatch
    # immediately, so the race cannot be cancelled); both walks lose.
    assert system.iommu.stats["walks_wasted"] == 2
    assert system.iommu.walkers.stats["walks_dispatched"] == 3
