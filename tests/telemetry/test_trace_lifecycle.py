"""End-to-end span lifecycle invariants on real simulations.

Every sampled trace collected from a full run — healthy or fault-injected
— must satisfy the balanced-span-tree contract: root closed with exactly
one terminal outcome, no leaked spans, ``begin <= end``, children nested
inside the root interval.
"""

import pytest

from repro.config.presets import baseline_config
from repro.sim.system import MultiGPUSystem
from repro.telemetry import TelemetryConfig
from repro.workloads.multi_app import (
    build_multi_app_workload,
    build_single_app_workload,
)


def traced_system(workload_name, builder, policy, *, rate=0.1, **kwargs):
    config = baseline_config()
    workload = builder(workload_name, config, scale=0.05)
    return MultiGPUSystem(
        config, workload, policy,
        telemetry=TelemetryConfig(sample_rate=rate),
        **kwargs,
    )


def assert_all_balanced(hub):
    assert hub.traces, "run collected no traces"
    assert not hub.live, "live traces survived finalize"
    for trace in hub.traces:
        assert trace.check_invariants() == [], (
            f"trace {trace.trace_id}: {trace.check_invariants()}"
        )


class TestHealthyRuns:
    @pytest.mark.parametrize(
        "name,builder,policy",
        [
            ("MM", build_single_app_workload, "least-tlb"),
            ("MM", build_single_app_workload, "baseline"),
            ("MM", build_single_app_workload, "tlb-probing"),
            ("W8", build_multi_app_workload, "least-tlb"),
        ],
    )
    def test_traces_balanced(self, name, builder, policy):
        system = traced_system(name, builder, policy)
        system.run()
        assert_all_balanced(system.telemetry)

    def test_every_trace_has_terminal_outcome(self):
        system = traced_system("MM", build_single_app_workload, "least-tlb")
        system.run()
        outcomes = {t.root.outcome for t in system.telemetry.traces}
        assert outcomes <= {"l1_hit", "l2_hit", "filled"}
        # A healthy run loses no traces to the end-of-run sweep.
        assert system.telemetry.incomplete_traces == 0

    def test_remote_probe_race_leaves_no_open_spans(self):
        """least-tlb races probes against walks; losers must close (a
        cancelled walk's callback never fires, a served probe's timeout
        no-ops) without leaking."""
        system = traced_system(
            "MM", build_single_app_workload, "least-tlb", rate=0.25
        )
        system.run()
        hub = system.telemetry
        assert_all_balanced(hub)
        probed = [
            s for t in hub.traces for s in t.spans if s.name == "remote_probe"
        ]
        assert probed, "no remote probes were traced"
        assert {s.outcome for s in probed} <= {"hit", "miss", "timeout", "fault"}

    def test_sampling_is_deterministic(self):
        runs = []
        for _ in range(2):
            system = traced_system("MM", build_single_app_workload, "least-tlb")
            system.run()
            runs.append(
                [(t.trace_id, t.vpn, [s.name for s in t.spans], t.root.outcome)
                 for t in system.telemetry.traces]
            )
        assert runs[0] == runs[1]

    def test_max_traces_caps_collection(self):
        config = baseline_config()
        workload = build_single_app_workload("MM", config, scale=0.05)
        system = MultiGPUSystem(
            config, workload, "least-tlb",
            telemetry=TelemetryConfig(sample_rate=1.0, max_traces=10),
        )
        system.run()
        assert len(system.telemetry.traces) == 10


class TestFaultInjectedRuns:
    def test_dropped_probes_close_spans_as_fault_not_leak(self):
        """drop-remote:1.0 loses every probe; the racing walk still serves
        each request, and the dropped probe's span must close with
        ``outcome=fault`` instead of leaking open."""
        system = traced_system(
            "MM", build_single_app_workload, "least-tlb",
            rate=0.25, faults="drop-remote:1.0",
        )
        system.run()
        hub = system.telemetry
        assert_all_balanced(hub)
        probes = [
            s for t in hub.traces for s in t.spans if s.name == "remote_probe"
        ]
        assert probes, "fault plan produced no traced probes"
        assert all(s.outcome == "fault" for s in probes)

    def test_dropped_walks_stay_balanced_via_retries(self):
        """drop-walk:0.5 eats walk results; hardening retries re-issue
        them.  Every page_walk span still closes (ok/timeout/stale) and
        trees stay balanced."""
        system = traced_system(
            "MM", build_single_app_workload, "least-tlb",
            rate=0.25, faults="drop-walk:0.5",
        )
        system.run()
        assert_all_balanced(system.telemetry)

    def test_finalize_closes_traces_lost_to_event_cap(self):
        """A run cut off mid-flight (max_cycles) leaves live traces; the
        end-of-run sweep must close them as faults, not leak them."""
        config = baseline_config()
        workload = build_single_app_workload("MM", config, scale=0.05)
        system = MultiGPUSystem(
            config, workload, "least-tlb",
            telemetry=TelemetryConfig(sample_rate=0.5),
        )
        system.run(max_cycles=2000)
        hub = system.telemetry
        assert not hub.live
        for trace in hub.traces:
            assert trace.check_invariants() == []
        if hub.incomplete_traces:
            faulted = [t for t in hub.traces if t.root.outcome == "fault"]
            assert len(faulted) == hub.incomplete_traces
