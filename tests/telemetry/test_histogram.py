"""LogHistogram: bucketing, percentiles, lossless merge, round-trip."""

import pytest

from repro.telemetry.histogram import LogHistogram


class TestBucketing:
    def test_zero_goes_to_bucket_zero(self):
        hist = LogHistogram()
        hist.record(0)
        assert hist.buckets == {0: 1}
        assert hist.min == 0 and hist.max == 0

    @pytest.mark.parametrize(
        "value,index",
        [(1, 1), (2, 2), (3, 2), (4, 3), (7, 3), (8, 4), (1023, 10), (1024, 11)],
    )
    def test_power_of_two_buckets(self, value, index):
        assert LogHistogram.bucket_index(value) == index
        assert value <= LogHistogram.bucket_upper_bound(index)
        # ...and the value does not fit in the bucket below.
        if index > 1:
            assert value > LogHistogram.bucket_upper_bound(index - 1)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LogHistogram().record(-1)


class TestStatistics:
    def test_min_max_mean_exact(self):
        hist = LogHistogram()
        for v in (10, 500, 3, 77):
            hist.record(v)
        assert hist.min == 3
        assert hist.max == 500
        assert hist.count == 4
        assert hist.mean == pytest.approx((10 + 500 + 3 + 77) / 4)

    def test_percentiles_clamped_to_observed_range(self):
        hist = LogHistogram()
        hist.record(100)
        # A single sample: every percentile is that sample's value (the
        # bucket bound 127 must be clamped down to the max).
        assert hist.p50 == 100
        assert hist.p99 == 100

    def test_percentile_never_exceeds_max_nor_undershoots_min(self):
        hist = LogHistogram()
        for v in range(1, 1000, 7):
            hist.record(v)
        for frac in (0.01, 0.5, 0.9, 0.99, 1.0):
            p = hist.percentile(frac)
            assert hist.min <= p <= hist.max

    def test_percentile_ordering(self):
        hist = LogHistogram()
        for v in (1, 2, 4, 8, 16, 1000, 2000, 4000):
            hist.record(v)
        assert hist.p50 <= hist.p90 <= hist.p99 <= hist.max

    def test_percentile_accuracy_within_one_bucket(self):
        hist = LogHistogram()
        for v in range(1, 101):
            hist.record(v)
        # True p50 is 50; the estimate is the bound of its bucket, so it
        # may be at most one power of two above.
        assert 50 <= hist.p50 <= 127

    def test_empty_histogram(self):
        hist = LogHistogram()
        assert hist.count == 0
        assert hist.p50 == 0 and hist.p99 == 0 and hist.mean == 0.0

    def test_bad_fraction_rejected(self):
        hist = LogHistogram()
        hist.record(1)
        with pytest.raises(ValueError):
            hist.percentile(0.0)
        with pytest.raises(ValueError):
            hist.percentile(1.5)


class TestMerge:
    def test_merge_is_lossless(self):
        a, b, combined = LogHistogram(), LogHistogram(), LogHistogram()
        for v in (1, 10, 100):
            a.record(v)
            combined.record(v)
        for v in (5, 50, 5000):
            b.record(v)
            combined.record(v)
        a.merge(b)
        assert a.count == combined.count
        assert a.total == combined.total
        assert a.min == combined.min
        assert a.max == combined.max
        assert a.buckets == combined.buckets

    def test_merge_into_empty_and_from_empty(self):
        a, b = LogHistogram(), LogHistogram()
        b.record(42)
        a.merge(b)
        assert a.min == 42 and a.max == 42 and a.count == 1
        a.merge(LogHistogram())  # no-op
        assert a.count == 1


class TestSerialisation:
    def test_round_trip(self):
        hist = LogHistogram()
        for v in (0, 1, 17, 900):
            hist.record(v)
        data = hist.to_dict()
        back = LogHistogram.from_dict(data)
        assert back.to_dict() == data

    def test_dict_carries_headline_percentiles(self):
        hist = LogHistogram()
        hist.record(64)
        data = hist.to_dict()
        assert {"count", "min", "max", "mean", "p50", "p90", "p99"} <= set(data)
        assert data["p50"] == 64
