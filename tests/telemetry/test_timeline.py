"""Interval timelines and the unified TLB-snapshot capture."""

from repro.config.presets import baseline_config
from repro.sim.system import MultiGPUSystem
from repro.telemetry import TelemetryConfig, capture_tlb_snapshot
from repro.workloads.multi_app import build_single_app_workload


def run_with_timeline(interval=5000, **kwargs):
    config = baseline_config()
    workload = build_single_app_workload("MM", config, scale=0.05)
    system = MultiGPUSystem(
        config, workload, "least-tlb",
        telemetry=TelemetryConfig(timeline_interval=interval),
        **kwargs,
    )
    result = system.run()
    return system, result


class TestTimeline:
    def test_epochs_recorded_at_interval(self):
        system, result = run_with_timeline(interval=5000)
        epochs = system.telemetry.timeline.epochs
        assert epochs, "no epochs recorded"
        cycles = [e["cycle"] for e in epochs]
        assert cycles == sorted(cycles)
        assert cycles[0] == 5000
        assert all(c % 5000 == 0 for c in cycles)

    def test_epoch_deltas_sum_to_final_counters(self):
        system, result = run_with_timeline(interval=2000)
        epochs = system.telemetry.timeline.epochs
        # Delta decomposition: epoch sums never exceed the run totals and
        # account for everything up to the last epoch boundary.
        total_requests = system.iommu.stats["requests"]
        epoch_requests = sum(e["iommu_requests"] for e in epochs)
        assert 0 < epoch_requests <= total_requests

    def test_epochs_carry_occupancy_and_counters(self):
        system, _ = run_with_timeline()
        epoch = system.telemetry.timeline.epochs[-1]
        assert {"l2_hit_rate", "iommu_hit_rate", "l2_occupancy",
                "iommu_occupancy", "eviction_counters", "pending_entries",
                "walkers_busy"} <= set(epoch)
        assert len(epoch["eviction_counters"]) == system.config.num_gpus
        assert 0.0 <= epoch["l2_hit_rate"] <= 1.0

    def test_timeline_lands_in_result_json(self):
        system, result = run_with_timeline()
        assert result.telemetry is not None
        assert result.telemetry["timeline"] == system.telemetry.timeline.epochs


class TestSnapshotUnification:
    def test_capture_tlb_snapshot_matches_system_snapshot_path(self):
        """``--snapshot-interval`` now routes through the telemetry
        module's :func:`capture_tlb_snapshot`; the two must agree."""
        config = baseline_config()
        workload = build_single_app_workload("MM", config, scale=0.05)
        system = MultiGPUSystem(
            config, workload, "least-tlb", snapshot_interval=5000
        )
        result = system.run()
        assert result.snapshots, "no snapshots taken"
        final = capture_tlb_snapshot(system)
        # The helper observes the same structures the periodic snapshot
        # does: at end-of-run both see identical residency.
        assert final.iommu_resident == len(system.iommu.tlb)
        assert final.iommu_owner_counts is not None
        last = result.snapshots[-1]
        assert last.l2_resident >= 0 and last.cycle % 5000 == 0
