"""RequestTrace span-tree lifecycle invariants (unit level)."""

import pytest

from repro.telemetry.spans import ROOT_SPAN, RequestTrace


def make_trace(cycle=100):
    return RequestTrace(0, gpu_id=1, cu_id=2, pid=3, vpn=0x40, cycle=cycle)


class TestLifecycle:
    def test_root_opens_at_construction(self):
        trace = make_trace(cycle=100)
        assert trace.root.name == ROOT_SPAN
        assert trace.root.begin == 100
        assert not trace.complete

    def test_begin_end_balanced(self):
        trace = make_trace()
        trace.begin("page_walk", 110)
        assert trace.is_open("page_walk")
        assert trace.end("page_walk", 160, outcome="ok")
        assert not trace.is_open("page_walk")
        trace.close_root(170, outcome="filled")
        assert trace.check_invariants() == []

    def test_double_begin_rejected(self):
        trace = make_trace()
        trace.begin("page_walk", 110)
        with pytest.raises(ValueError):
            trace.begin("page_walk", 120)

    def test_end_is_idempotent(self):
        """The loser of a timeout-vs-response race must no-op."""
        trace = make_trace()
        trace.begin("remote_probe", 110)
        assert trace.end("remote_probe", 150, outcome="hit")
        assert not trace.end("remote_probe", 200, outcome="timeout")
        span = [s for s in trace.spans if s.name == "remote_probe"][0]
        assert span.outcome == "hit"
        assert span.end == 150

    def test_retry_reopens_after_close(self):
        trace = make_trace()
        trace.begin("page_walk", 110, attempt=1)
        trace.end("page_walk", 200, outcome="timeout")
        trace.begin("page_walk", 210, attempt=2)
        trace.end("page_walk", 300, outcome="ok")
        walks = [s for s in trace.spans if s.name == "page_walk"]
        assert [s.outcome for s in walks] == ["timeout", "ok"]
        trace.close_root(310, outcome="filled")
        assert trace.check_invariants() == []

    def test_straggler_child_extends_root(self):
        """A racing walk that loses to the remote probe closes *after*
        the CU was served; the root stretches so the child stays nested."""
        trace = make_trace(cycle=100)
        trace.begin("page_walk", 110)
        trace.close_root(150, outcome="filled")
        trace.end("page_walk", 600, outcome="stale")
        assert trace.root.end == 600
        assert trace.check_invariants() == []

    def test_add_complete_also_extends_root(self):
        trace = make_trace(cycle=100)
        trace.close_root(150, outcome="l1_hit")
        trace.add_complete("response", 140, 180, outcome="ok")
        assert trace.root.end == 180
        assert trace.check_invariants() == []

    def test_exactly_one_terminal_outcome(self):
        trace = make_trace()
        assert trace.close_root(150, outcome="filled")
        # A second close is rejected (idempotent end on the root).
        assert not trace.close_root(200, outcome="fault")
        assert trace.root.outcome == "filled"


class TestFinalize:
    def test_finalize_closes_children_then_root_as_fault(self):
        trace = make_trace(cycle=100)
        trace.begin("remote_probe", 110)
        trace.begin("page_walk", 110)
        closed = trace.finalize(500)
        assert closed == 3  # both children plus the root
        assert trace.check_invariants() == []
        assert trace.root.outcome == "fault"
        assert all(s.outcome == "fault" for s in trace.children())

    def test_finalize_on_complete_trace_is_noop(self):
        trace = make_trace()
        trace.close_root(150, outcome="filled")
        assert trace.finalize(500) == 0
        assert trace.root.outcome == "filled"


class TestInvariantChecker:
    def test_detects_open_span(self):
        trace = make_trace()
        trace.begin("page_walk", 110)
        trace.close_root(150, outcome="filled")
        problems = trace.check_invariants()
        assert any("leaked" in p for p in problems)

    def test_detects_unclosed_root(self):
        trace = make_trace()
        problems = trace.check_invariants()
        assert any("never closed" in p for p in problems)

    def test_detects_child_escaping_root(self):
        trace = make_trace(cycle=100)
        trace.add_complete("l1_lookup", 50, 90, outcome="miss")  # before root
        trace.close_root(150, outcome="filled")
        problems = trace.check_invariants()
        assert any("escapes" in p for p in problems)

    def test_detects_end_before_begin(self):
        trace = make_trace(cycle=100)
        trace.add_complete("response", 200, 150, outcome="ok")
        trace.close_root(250, outcome="filled")
        problems = trace.check_invariants()
        assert any("ends before it begins" in p for p in problems)
