"""Chrome trace_event export, schema validation, and the flame summary."""

import json

from repro.config.presets import baseline_config
from repro.sim.system import MultiGPUSystem
from repro.telemetry import (
    TelemetryConfig,
    chrome_trace_events,
    export_chrome_trace,
    flame_summary,
    validate_chrome_trace,
)
from repro.telemetry.spans import RequestTrace
from repro.workloads.multi_app import build_single_app_workload


def sample_trace(trace_id=0, gpu_id=1):
    trace = RequestTrace(trace_id, gpu_id, cu_id=2, pid=3, vpn=0x40, cycle=100)
    trace.add_complete("l1_lookup", 100, 101, outcome="miss")
    trace.begin("page_walk", 140, attempt=1)
    trace.end("page_walk", 640, outcome="ok")
    trace.close_root(700, outcome="filled")
    return trace


class TestEventGeneration:
    def test_events_carry_required_fields_and_metadata(self):
        events = chrome_trace_events([sample_trace()])
        phases = [e["ph"] for e in events]
        assert phases.count("M") == 2  # process_name + thread_name
        xs = [e for e in events if e["ph"] == "X"]
        assert len(xs) == 3  # root + l1_lookup + page_walk
        for event in xs:
            assert {"name", "cat", "ts", "dur", "pid", "tid", "args"} <= set(event)
            assert event["pid"] == 1
            assert event["tid"] == 0
            assert event["dur"] >= 0
        walk = [e for e in xs if e["name"] == "page_walk"][0]
        assert walk["args"] == {"outcome": "ok", "attempt": 1}

    def test_process_metadata_emitted_once_per_gpu(self):
        traces = [sample_trace(0, gpu_id=1), sample_trace(1, gpu_id=1),
                  sample_trace(2, gpu_id=2)]
        events = chrome_trace_events(traces)
        process_names = [e for e in events
                         if e["ph"] == "M" and e["name"] == "process_name"]
        assert len(process_names) == 2

    def test_open_spans_are_skipped_defensively(self):
        trace = RequestTrace(0, 0, 0, 0, 0, cycle=10)
        trace.begin("page_walk", 20)  # never closed, never finalized
        events = chrome_trace_events([trace])
        assert not [e for e in events if e["ph"] == "X"]


class TestValidation:
    def test_valid_payload_passes(self):
        payload = {"traceEvents": chrome_trace_events([sample_trace()])}
        assert validate_chrome_trace(payload) == []

    def test_rejects_non_object_and_missing_events(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({}) != []
        assert validate_chrome_trace({"traceEvents": "nope"}) != []

    def test_rejects_malformed_x_events(self):
        payload = {"traceEvents": [{"ph": "X", "name": "a", "ts": -5,
                                    "dur": 1, "pid": 0, "tid": 0}]}
        problems = validate_chrome_trace(payload)
        assert any("negative ts" in p for p in problems)

    def test_rejects_empty_trace(self):
        problems = validate_chrome_trace({"traceEvents": []})
        assert any("no duration" in p for p in problems)


class TestExportEndToEnd:
    def test_simulated_run_exports_valid_file(self, tmp_path):
        config = baseline_config()
        workload = build_single_app_workload("MM", config, scale=0.05)
        system = MultiGPUSystem(
            config, workload, "least-tlb",
            telemetry=TelemetryConfig(sample_rate=0.1),
        )
        system.run()
        out = tmp_path / "trace.json"
        export_chrome_trace(system.telemetry.traces, out,
                            run_info={"workload": "MM"})
        payload = json.loads(out.read_text())
        assert validate_chrome_trace(payload) == []
        assert payload["otherData"]["workload"] == "MM"
        # Cycle counts survive into ts/dur untouched.
        xs = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert all(isinstance(e["ts"], int) for e in xs)


class TestFlameSummary:
    def test_summary_aggregates_spans(self):
        text = flame_summary([sample_trace(i) for i in range(3)])
        assert "3 traced requests" in text
        assert "page_walk" in text
        assert "ok:3" in text

    def test_empty_summary_is_helpful(self):
        assert "no traces" in flame_summary([])
