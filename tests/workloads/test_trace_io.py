"""Unit tests for workload serialization and bring-your-own-trace."""

import numpy as np
import pytest

from repro.config.presets import baseline_config
from repro.sim.system import MultiGPUSystem
from repro.workloads.multi_app import build_multi_app_workload, build_single_app_workload
from repro.workloads.trace_io import (
    load_workload,
    save_workload,
    workload_from_page_streams,
)


class TestRoundTrip:
    def test_single_app_workload_roundtrips(self, tmp_path):
        config = baseline_config()
        original = build_single_app_workload("MM", config, scale=0.05)
        path = save_workload(original, tmp_path / "mm.npz")
        loaded = load_workload(path)
        assert loaded.name == original.name
        assert loaded.kind == original.kind
        assert loaded.app_names == original.app_names
        assert len(loaded.placements) == len(original.placements)
        for a, b in zip(original.placements, loaded.placements):
            assert a.gpu_id == b.gpu_id and a.pid == b.pid
            assert a.cu_ids == b.cu_ids
            for sa, sb in zip(a.streams, b.streams):
                assert np.array_equal(sa.vpns, sb.vpns)
                assert np.array_equal(sa.gaps, sb.gaps)
                assert np.array_equal(sa.repeats, sb.repeats)
                assert sa.warmup_runs == sb.warmup_runs
        for pid in original.footprints:
            assert np.array_equal(original.footprints[pid], loaded.footprints[pid])

    def test_multi_app_workload_roundtrips(self, tmp_path):
        config = baseline_config()
        original = build_multi_app_workload("W2", config, scale=0.05)
        loaded = load_workload(save_workload(original, tmp_path / "w2.npz"))
        assert loaded.pids == original.pids
        for pid in original.pids:
            assert loaded.instructions_for(pid) == original.instructions_for(pid)
            assert loaded.measured_runs_for(pid) == original.measured_runs_for(pid)

    def test_loaded_workload_simulates_identically(self, tmp_path):
        config = baseline_config()
        original = build_single_app_workload("FIR", config, scale=0.05)
        loaded = load_workload(save_workload(original, tmp_path / "fir.npz"))
        a = MultiGPUSystem(config, original, "least-tlb").run()
        b = MultiGPUSystem(config, loaded, "least-tlb").run()
        assert a.total_cycles == b.total_cycles
        assert a.apps[1].counters == b.apps[1].counters

    def test_path_without_suffix(self, tmp_path):
        original = build_single_app_workload("FIR", baseline_config(), scale=0.05)
        written = save_workload(original, tmp_path / "plain")
        assert written.suffix == ".npz"
        assert load_workload(written).name == "FIR"

    def test_version_check(self, tmp_path):
        original = build_single_app_workload("FIR", baseline_config(), scale=0.05)
        path = save_workload(original, tmp_path / "fir.npz")
        # Corrupt the manifest version.
        import json

        with np.load(path) as archive:
            arrays = {k: archive[k] for k in archive.files}
        manifest = json.loads(bytes(arrays["manifest"]).decode())
        manifest["version"] = 99
        arrays["manifest"] = np.frombuffer(json.dumps(manifest).encode(), dtype=np.uint8)
        np.savez(path, **arrays)
        with pytest.raises(ValueError, match="version"):
            load_workload(path)


class TestBringYourOwnTrace:
    def test_builds_runnable_workload(self, tiny_config):
        rng = np.random.default_rng(1)
        workload = workload_from_page_streams(
            "mytrace",
            {0: rng.integers(0, 50, 200), 1: rng.integers(0, 50, 150)},
            num_cus=4,
            mean_gap=100,
        )
        assert workload.pids == [1, 2]
        result = MultiGPUSystem(tiny_config, workload, "least-tlb").run()
        assert result.apps[1].counters["runs"] > 0
        assert result.apps[2].counters["runs"] > 0

    def test_shared_pid_mode(self):
        workload = workload_from_page_streams(
            "shared", {0: np.arange(10), 1: np.arange(10)},
            num_cus=2, pid_per_gpu=False, kind="single",
        )
        assert workload.pids == [1]
        assert sorted(workload.gpus_for(1)) == [0, 1]

    def test_rejects_empty_stream(self):
        with pytest.raises(ValueError, match="nonempty"):
            workload_from_page_streams("bad", {0: np.array([])})

    def test_footprint_covers_pages(self):
        workload = workload_from_page_streams(
            "fp", {0: np.array([5, 9, 5, 3])}, num_cus=1
        )
        assert set(workload.footprints[1].tolist()) == {3, 5, 9}


class TestCorruptArchives:
    """load_workload raises typed TraceFormatError (docs/traces.md)."""

    def test_truncated_archive(self, tmp_path):
        from repro.workloads.errors import TraceFormatError

        original = build_single_app_workload("FIR", baseline_config(), scale=0.05)
        path = save_workload(original, tmp_path / "fir.npz")
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(TraceFormatError) as excinfo:
            load_workload(path)
        assert str(path) in str(excinfo.value)
        assert excinfo.value.cause is not None

    def test_non_archive_bytes(self, tmp_path):
        from repro.workloads.errors import TraceFormatError

        path = tmp_path / "junk.npz"
        path.write_bytes(b"this is not a zip archive")
        with pytest.raises(TraceFormatError):
            load_workload(path)

    def test_version_mismatch_is_typed(self, tmp_path):
        import json

        from repro.workloads.errors import TraceFormatError

        original = build_single_app_workload("FIR", baseline_config(), scale=0.05)
        path = save_workload(original, tmp_path / "fir.npz")
        with np.load(path) as archive:
            arrays = {k: archive[k] for k in archive.files}
        manifest = json.loads(bytes(arrays["manifest"]).decode())
        manifest["version"] = 99
        arrays["manifest"] = np.frombuffer(json.dumps(manifest).encode(), dtype=np.uint8)
        np.savez(path, **arrays)
        with pytest.raises(TraceFormatError, match="version"):
            load_workload(path)
