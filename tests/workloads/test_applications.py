"""Unit tests for the application specs and trace generation."""

import numpy as np
import pytest

from repro.config.system import PAGE_2MB
from repro.workloads.applications import (
    APPLICATIONS,
    classify_mpki,
    generate_application_traces,
    generate_gpu_trace,
    get_application,
)


class TestRegistry:
    def test_table3_applications_present(self):
        for name in ("FIR", "KM", "PR", "AES", "MT", "MM", "BS", "ST", "FFT", "SC"):
            assert name in APPLICATIONS

    def test_lookup_case_insensitive(self):
        assert get_application("mt").name == "MT"

    def test_unknown_application(self):
        with pytest.raises(ValueError, match="unknown application"):
            get_application("XYZ")

    def test_paper_mpki_classes_consistent(self):
        """Each spec's declared class matches the paper's MPKI value."""
        for spec in APPLICATIONS.values():
            assert classify_mpki(spec.paper_mpki) == spec.mpki_class

    def test_patterns_match_paper_table(self):
        """Section 3.1.2's pattern assignment: random (BS, PR), adjacent
        (ST, FIR), partition (KM, AES), stride (FFT), scatter-gather
        (MT, MM)."""
        expected = {
            "BS": "random", "PR": "random",
            "ST": "adjacent", "FIR": "adjacent", "SC": "adjacent",
            "KM": "partition", "AES": "partition",
            "FFT": "stride",
            "MT": "scatter_gather", "MM": "scatter_gather",
        }
        for name, pattern in expected.items():
            assert APPLICATIONS[name].pattern.pattern == pattern


class TestClassification:
    def test_boundaries(self):
        assert classify_mpki(0.05) == "L"
        assert classify_mpki(0.1) == "M"
        assert classify_mpki(0.99) == "M"
        assert classify_mpki(1.0) == "H"


class TestTraceGeneration:
    def test_runs_dealt_across_cus(self):
        spec = get_application("FIR")
        trace = generate_gpu_trace(spec, 1, 0, 4, num_cus=8, runs=800, seed=1)
        assert len(trace.cu_streams) == 8
        assert trace.num_runs == 800
        assert all(s.num_runs == 100 for s in trace.cu_streams)

    def test_warmup_marked(self):
        spec = get_application("FIR")
        trace = generate_gpu_trace(
            spec, 1, 0, 4, num_cus=4, runs=400, seed=1, warmup_frac=0.25
        )
        for s in trace.cu_streams:
            assert s.warmup_runs == 25
            assert s.measured_runs == 75

    def test_deterministic_per_seed(self):
        spec = get_application("MM")
        a = generate_gpu_trace(spec, 1, 2, 4, num_cus=4, runs=500, seed=9)
        b = generate_gpu_trace(spec, 1, 2, 4, num_cus=4, runs=500, seed=9)
        for sa, sb in zip(a.cu_streams, b.cu_streams):
            assert np.array_equal(sa.vpns, sb.vpns)
            assert np.array_equal(sa.gaps, sb.gaps)

    def test_different_gpus_different_streams(self):
        spec = get_application("PR")
        a = generate_gpu_trace(spec, 1, 0, 4, num_cus=4, runs=500, seed=9)
        b = generate_gpu_trace(spec, 1, 1, 4, num_cus=4, runs=500, seed=9)
        assert not np.array_equal(a.cu_streams[0].vpns, b.cu_streams[0].vpns)

    def test_scale_shrinks_runs_not_footprint(self):
        spec = get_application("KM")
        full = generate_application_traces(spec, 1, num_gpus=4, num_cus=4, scale=1.0)
        small = generate_application_traces(spec, 1, num_gpus=4, num_cus=4, scale=0.1)
        assert small[0].num_runs < full[0].num_runs
        # Footprint geometry unchanged: pages still span the same range.
        assert max(max(s.vpns.max() for s in t.cu_streams) for t in small) > 1000

    def test_invalid_scale(self):
        spec = get_application("KM")
        with pytest.raises(ValueError, match="scale"):
            generate_application_traces(spec, 1, num_gpus=4, num_cus=4, scale=0)

    def test_invalid_warmup(self):
        spec = get_application("KM")
        with pytest.raises(ValueError, match="warmup_frac"):
            generate_gpu_trace(spec, 1, 0, 4, num_cus=4, runs=100, seed=1, warmup_frac=1.0)


class TestIntensityPhases:
    def test_phased_apps_have_bimodal_gaps(self):
        spec = get_application("MT")
        assert spec.intensity_period > 0
        trace = generate_gpu_trace(spec, 1, 0, 4, num_cus=1, runs=40_000, seed=1)
        gaps = trace.cu_streams[0].gaps
        # Compute phases stretch gaps by the intensity factor.
        assert gaps.max() > spec.mean_gap * 2
        assert gaps.min() < spec.mean_gap


class TestVariants:
    def test_single_gpu_halves_input(self):
        spec = get_application("ST")
        alone = spec.for_single_gpu()
        assert alone.pattern.footprint_pages == spec.pattern.footprint_pages // 2
        assert alone.pattern.far_region_pages == spec.pattern.far_region_pages // 2
        assert alone.total_runs == spec.total_runs // 2
        # Locality/intensity knobs preserved -> MPKI class preserved.
        assert alone.mean_gap == spec.mean_gap
        assert alone.pattern.p_reuse == spec.pattern.p_reuse

    def test_large_pages_shrink_footprint(self):
        spec = get_application("MT")
        large = spec.scaled_to_page_size(PAGE_2MB)
        assert large.pattern.footprint_pages == spec.pattern.footprint_pages // 512
        assert spec.scaled_to_page_size(4096) is spec
