"""Unit tests for workload construction (Tables 4, 5, 6)."""

import pytest

from repro.config.presets import baseline_config, scaled_config
from repro.workloads.multi_app import (
    MIX_WORKLOADS,
    MULTI_APP_WORKLOADS,
    SCALED_WORKLOADS,
    SINGLE_APP_NAMES,
    build_alone_workload,
    build_mix_workload,
    build_multi_app_workload,
    build_single_app_workload,
    workload_category,
)


class TestTables:
    def test_table4_has_ten_workloads_of_four_apps(self):
        assert len(MULTI_APP_WORKLOADS) == 10
        for apps, category in MULTI_APP_WORKLOADS.values():
            assert len(apps) == 4
            assert len(category) == 4

    def test_table5_sizes(self):
        for name, (apps, _) in SCALED_WORKLOADS.items():
            assert len(apps) == (16 if name == "W16" else 8)

    def test_table6_pairs(self):
        for pairs, _ in MIX_WORKLOADS.values():
            assert len(pairs) == 3
            assert all(len(p) == 2 for p in pairs)

    def test_w10_is_all_high(self):
        apps, category = MULTI_APP_WORKLOADS["W10"]
        assert apps == ("MT", "MT", "ST", "ST")
        assert category == "HHHH"

    def test_category_lookup(self):
        assert workload_category("W4") == "LLMH"
        assert workload_category("W17") == "LM,LH,MH"
        with pytest.raises(ValueError):
            workload_category("W99")

    def test_single_app_names_match_table3(self):
        assert SINGLE_APP_NAMES == ("FIR", "KM", "PR", "AES", "MT", "MM", "BS", "ST", "FFT")


class TestSingleAppWorkload:
    def test_spans_all_gpus_one_pid(self):
        config = baseline_config()
        workload = build_single_app_workload("MM", config, scale=0.05)
        assert workload.kind == "single"
        assert workload.pids == [1]
        assert workload.gpus_for(1) == [0, 1, 2, 3]
        assert len(workload.placements) == 4
        for placement in workload.placements:
            assert len(placement.cu_ids) == config.gpu.num_cus

    def test_describe_mentions_app(self):
        workload = build_single_app_workload("MM", baseline_config(), scale=0.05)
        assert "MM" in workload.describe()


class TestMultiAppWorkload:
    def test_one_app_per_gpu(self):
        config = baseline_config()
        workload = build_multi_app_workload("W6", config, scale=0.05)
        assert workload.kind == "multi"
        assert workload.pids == [1, 2, 3, 4]
        assert [workload.app_names[p] for p in workload.pids] == ["FIR", "AES", "MT", "ST"]
        for pid in workload.pids:
            assert workload.gpus_for(pid) == [pid - 1]

    def test_explicit_tuple(self):
        workload = build_multi_app_workload(
            ("FIR", "KM", "MT", "ST"), baseline_config(), scale=0.05
        )
        assert workload.name == "FIR+KM+MT+ST"

    def test_wrong_app_count_rejected(self):
        with pytest.raises(ValueError, match="one application per GPU"):
            build_multi_app_workload(("FIR", "KM"), baseline_config(), scale=0.05)

    def test_unknown_workload(self):
        with pytest.raises(ValueError, match="unknown workload"):
            build_multi_app_workload("W42", baseline_config())

    def test_8gpu_workload_needs_8gpu_config(self):
        workload = build_multi_app_workload("W11", scaled_config(8), scale=0.05)
        assert len(workload.pids) == 8
        with pytest.raises(ValueError):
            build_multi_app_workload("W11", baseline_config(), scale=0.05)

    def test_duplicate_apps_get_distinct_pids(self):
        workload = build_multi_app_workload("W10", baseline_config(), scale=0.05)
        names = [workload.app_names[p] for p in workload.pids]
        assert names == ["MT", "MT", "ST", "ST"]
        assert len(set(workload.pids)) == 4


class TestMixWorkload:
    def test_two_apps_share_each_gpu(self):
        config = baseline_config()
        workload = build_mix_workload("W17", config, scale=0.05)
        assert len(workload.pids) == 6
        # Pairs on GPUs 0-2; GPU 3 idle (the table lists three pairs).
        for gpu in range(3):
            placements = workload.placements_on(gpu)
            assert len(placements) == 2
            cus = sorted(c for p in placements for c in p.cu_ids)
            assert cus == list(range(config.gpu.num_cus))
        assert workload.placements_on(3) == []

    def test_unknown_mix(self):
        with pytest.raises(ValueError, match="unknown mix workload"):
            build_mix_workload("W99", baseline_config())


class TestAloneWorkload:
    def test_single_gpu_single_pid(self):
        workload = build_alone_workload("KM", baseline_config(), scale=0.05)
        assert workload.kind == "multi"
        assert workload.pids == [1]
        assert workload.gpus_for(1) == [0]

    def test_alone_uses_single_gpu_input(self):
        config = baseline_config()
        alone = build_alone_workload("KM", config, scale=1.0)
        spread = build_single_app_workload("KM", config, scale=1.0)
        # The alone run executes the halved single-GPU input.
        assert alone.runs_for(1) < spread.runs_for(1)


class TestAccounting:
    def test_measured_counts_are_consistent(self):
        workload = build_single_app_workload("FIR", baseline_config(), scale=0.1)
        pid = 1
        assert 0 < workload.measured_runs_for(pid) < workload.runs_for(pid)
        assert 0 < workload.measured_instructions_for(pid) < workload.instructions_for(pid)
        assert workload.measured_accesses_for(pid) <= workload.accesses_for(pid)
