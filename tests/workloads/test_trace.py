"""Unit tests for the trace data model."""

import numpy as np
import pytest

from repro.workloads.trace import CUStream, GPUTrace, Placement, Workload


def stream(n=4, warmup=0):
    return CUStream(
        vpns=np.arange(n, dtype=np.int64),
        gaps=np.full(n, 10, dtype=np.int64),
        repeats=np.full(n, 3, dtype=np.int64),
        warmup_runs=warmup,
    )


class TestCUStream:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            CUStream(np.arange(3), np.arange(2), np.arange(3))

    def test_negative_warmup_rejected(self):
        with pytest.raises(ValueError, match="warmup"):
            stream(warmup=-1)

    def test_warmup_clamped_below_length(self):
        s = stream(n=4, warmup=10)
        assert s.warmup_runs == 3
        assert s.measured_runs == 1

    def test_counts(self):
        s = stream(n=4, warmup=1)
        assert s.num_runs == 4
        assert s.num_accesses == 12
        assert s.measured_accesses == 9
        assert s.instructions == 40
        assert s.measured_instructions == 30

    def test_empty_stream(self):
        s = CUStream(np.array([], dtype=np.int64), np.array([], dtype=np.int64),
                     np.array([], dtype=np.int64))
        assert s.num_runs == 0
        assert s.measured_runs == 0


class TestGPUTrace:
    def test_aggregates(self):
        trace = GPUTrace(pid=1, app_name="x", cu_streams=[stream(4), stream(2)])
        assert trace.num_runs == 6
        assert trace.num_accesses == 18
        assert trace.instructions == 60

    def test_touched_pages(self):
        trace = GPUTrace(pid=1, app_name="x", cu_streams=[stream(3)])
        assert trace.touched_pages() == {0, 1, 2}


class TestPlacement:
    def test_mismatched_streams_rejected(self):
        with pytest.raises(ValueError, match="streams"):
            Placement(gpu_id=0, pid=1, app_name="x", cu_ids=[0, 1],
                      streams=[stream()])


class TestWorkload:
    def make(self, kind="multi"):
        placements = [
            Placement(gpu_id=0, pid=1, app_name="a", cu_ids=[0], streams=[stream(4)]),
            Placement(gpu_id=1, pid=2, app_name="b", cu_ids=[0], streams=[stream(2)]),
        ]
        return Workload(
            name="w", kind=kind, placements=placements,
            app_names={1: "a", 2: "b"},
            footprints={1: np.arange(4), 2: np.arange(2)},
        )

    def test_invalid_kind(self):
        with pytest.raises(ValueError, match="kind"):
            self.make(kind="hybrid")

    def test_pid_queries(self):
        workload = self.make()
        assert workload.pids == [1, 2]
        assert workload.gpus_for(1) == [0]
        assert workload.runs_for(1) == 4
        assert workload.instructions_for(2) == 20

    def test_placements_on(self):
        workload = self.make()
        assert len(workload.placements_on(0)) == 1
        assert workload.placements_on(2) == []

    def test_describe(self):
        text = self.make().describe()
        assert "pid 1" in text and "pid 2" in text
