"""Tests for the streaming k6/mase trace-ingestion pipeline.

Covers the docs/traces.md contract: lossless round-trips (property-based),
typed malformed-input diagnostics, deterministic GPU splitting, stable
content digests, chunk-size independence, and the bounded-memory
guarantee (a million-access gzip trace ingested in a subprocess must hold
its peak RSS under a fixed bound).
"""

import gzip
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.presets import baseline_config
from repro.workloads.errors import TraceFormatError
from repro.workloads.ingest import (
    SPLIT_POLICIES,
    assign_gpus,
    default_trace_name,
    ingest_trace,
    sniff_format,
    synthesize_k6_trace,
    trace_digest,
    write_k6_trace,
)


def write_lines(path: Path, lines: list[str]) -> Path:
    text = "\n".join(lines) + ("\n" if lines else "")
    if path.suffix == ".gz":
        with gzip.open(path, "wt") as handle:
            handle.write(text)
    else:
        path.write_text(text)
    return path


# -- format sniffing ---------------------------------------------------------


class TestSniffFormat:
    def test_filename_prefix_wins(self, tmp_path):
        k6 = write_lines(tmp_path / "k6_foo.trc", ["0x1000 P_MEM_RD 5"])
        mase = write_lines(tmp_path / "mase_foo.trc", ["0x1000 READ 5"])
        assert sniff_format(k6) == "k6"
        assert sniff_format(mase) == "mase"

    def test_command_column_fallback(self, tmp_path):
        k6 = write_lines(tmp_path / "anything.trc", ["# c", "0x1000 P_MEM_WR 5"])
        mase = write_lines(tmp_path / "other.trc", ["0x2000 IFETCH 9"])
        assert sniff_format(k6) == "k6"
        assert sniff_format(mase) == "mase"

    def test_undecidable_raises(self, tmp_path):
        weird = write_lines(tmp_path / "x.trc", ["0x1000 FROB 5"])
        with pytest.raises(TraceFormatError, match="format"):
            sniff_format(weird)


# -- property-based round trip ----------------------------------------------


record_st = st.tuples(
    st.integers(0, 1 << 40),      # byte address
    st.booleans(),                # is_write
    st.integers(1, 2_000),        # cycle gap to the next record
)


class TestRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(records=st.lists(record_st, min_size=1, max_size=300),
           compress=st.booleans())
    def test_synthetic_to_k6_and_back(self, records, compress, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("roundtrip")
        addresses = np.array([r[0] for r in records], dtype=np.uint64)
        writes = np.array([r[1] for r in records], dtype=bool)
        cycles = np.cumsum([r[2] for r in records]).astype(np.int64)
        path = tmp_path / ("t.trc.gz" if compress else "t.trc")
        write_k6_trace(path, addresses, writes, cycles)

        result = ingest_trace(path, num_gpus=2, num_cus=4, scale=1.0)
        stats = result.stats
        assert stats.format == "k6"
        assert stats.compressed == compress
        assert stats.records == len(records)
        assert stats.writes == int(writes.sum())
        assert stats.reads == len(records) - int(writes.sum())
        assert stats.min_cycle == int(cycles[0])
        assert stats.max_cycle == int(cycles[-1])
        assert stats.non_monotonic == 0
        assert sum(stats.per_gpu_records) == len(records)
        expected_pages = np.unique(addresses >> np.uint64(12))
        assert stats.unique_pages == len(expected_pages)
        assert np.array_equal(
            result.workload.footprints[1], expected_pages.astype(np.int64)
        )

    def test_repeat_collapse_counts_runs_not_records(self, tmp_path):
        # 100 records on one page = one run; memory scales with runs.
        path = write_lines(
            tmp_path / "k6_runs.trc",
            [f"0x5000 P_MEM_RD {cycle}" for cycle in range(1, 101)],
        )
        result = ingest_trace(path, num_gpus=1, num_cus=1)
        assert result.stats.records == 100
        assert result.stats.runs == 1

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = write_lines(
            tmp_path / "k6_c.trc",
            ["# header", "", "; note", "// also", "0x1000 P_MEM_RD 5"],
        )
        stats = ingest_trace(path).stats
        assert stats.records == 1
        assert stats.lines == 5


# -- malformed input ---------------------------------------------------------


class TestDiagnostics:
    def test_malformed_line_names_line_and_text(self, tmp_path):
        path = write_lines(
            tmp_path / "k6_bad.trc",
            ["0x1000 P_MEM_RD 5", "garbage line here"],
        )
        with pytest.raises(TraceFormatError) as excinfo:
            ingest_trace(path)
        message = str(excinfo.value)
        assert "line 2" in message
        assert "garbage line here" in message
        assert excinfo.value.line == 2

    def test_unknown_command_rejected(self, tmp_path):
        path = write_lines(tmp_path / "k6_cmd.trc", ["0x1000 P_MEM_EAT 5"])
        with pytest.raises(TraceFormatError, match="P_MEM_EAT"):
            ingest_trace(path, fmt="k6")

    def test_truncated_gzip(self, tmp_path):
        path = tmp_path / "k6_trunc.trc.gz"
        synthesize_k6_trace(path, accesses=5_000, seed=3)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(TraceFormatError, match="truncated|corrupt"):
            ingest_trace(path, fmt="k6")

    def test_empty_file(self, tmp_path):
        path = write_lines(tmp_path / "k6_empty.trc", [])
        with pytest.raises(TraceFormatError, match="no records|empty"):
            ingest_trace(path, fmt="k6")

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceFormatError):
            ingest_trace(tmp_path / "nope.trc", fmt="k6")


# -- splitting ---------------------------------------------------------------


class TestSplitting:
    @pytest.fixture(scope="class")
    def trace(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("split") / "k6_split.trc.gz"
        synthesize_k6_trace(path, accesses=20_000, footprint_pages=512, seed=5)
        return path

    @pytest.mark.parametrize("split", SPLIT_POLICIES)
    def test_policies_conserve_records(self, trace, split):
        result = ingest_trace(trace, num_gpus=4, split=split)
        assert sum(result.stats.per_gpu_records) == result.stats.records

    @pytest.mark.parametrize("split", SPLIT_POLICIES)
    def test_deterministic_across_config_seeds(self, trace, split):
        # Ingestion has no stochastic step: two differently-seeded
        # configs must produce bit-identical workloads.
        results = [
            ingest_trace(trace, config=baseline_config().derive(seed=seed),
                         split=split)
            for seed in (0, 1)
        ]
        a, b = (r.workload for r in results)
        assert len(a.placements) == len(b.placements)
        for pa, pb in zip(a.placements, b.placements):
            assert pa.gpu_id == pb.gpu_id
            for sa, sb in zip(pa.streams, pb.streams):
                assert np.array_equal(sa.vpns, sb.vpns)
                assert np.array_equal(sa.gaps, sb.gaps)
                assert np.array_equal(sa.repeats, sb.repeats)

    def test_address_hash_is_position_independent(self):
        vpns = np.arange(100, dtype=np.int64)
        both = assign_gpus("address-hash", np.concatenate([vpns, vpns]),
                           num_gpus=4)
        assert np.array_equal(both[:100], both[100:])

    def test_contiguous_block_groups_neighbours(self):
        vpns = np.arange(1024, dtype=np.int64)
        gpus = assign_gpus("contiguous-block", vpns, num_gpus=2,
                           block_pages=512)
        assert set(gpus[:512]) == {0}
        assert set(gpus[512:]) == {1}

    def test_unknown_policy_rejected(self, trace):
        with pytest.raises(ValueError, match="split"):
            ingest_trace(trace, split="modulo-17")


# -- digests and determinism -------------------------------------------------


class TestDigest:
    def test_stable_across_paths(self, tmp_path):
        a = tmp_path / "a.trc.gz"
        synthesize_k6_trace(a, accesses=2_000, seed=1)
        b = tmp_path / "b.trc.gz"
        b.write_bytes(a.read_bytes())
        assert trace_digest(a) == trace_digest(b)

    def test_changes_with_content(self, tmp_path):
        path = tmp_path / "a.trc"
        write_lines(path, ["0x1000 P_MEM_RD 5"])
        before = trace_digest(path)
        write_lines(path, ["0x1000 P_MEM_RD 5", "0x2000 P_MEM_WR 6"])
        assert trace_digest(path) != before

    def test_chunk_size_independent_ingest(self, tmp_path):
        path = tmp_path / "k6_chunks.trc.gz"
        synthesize_k6_trace(path, accesses=10_000, seed=9)
        small = ingest_trace(path, chunk_records=97)
        large = ingest_trace(path)
        for pa, pb in zip(small.workload.placements, large.workload.placements):
            for sa, sb in zip(pa.streams, pb.streams):
                assert np.array_equal(sa.vpns, sb.vpns)
                assert np.array_equal(sa.gaps, sb.gaps)
                assert np.array_equal(sa.repeats, sb.repeats)
        assert small.stats.runs == large.stats.runs


class TestNaming:
    def test_default_trace_name_strips_suffixes(self):
        assert default_trace_name("dir/k6_app.trc.gz") == "k6_app"
        assert default_trace_name("weird name!.mase") == "weird_name"


# -- bounded memory ----------------------------------------------------------


RSS_SCRIPT = """
import resource, sys
sys.path.insert(0, {src!r})
from repro.workloads.ingest import ingest_trace
result = ingest_trace({path!r}, num_gpus=4, num_cus=64)
assert result.stats.records == {accesses}, result.stats.records
print(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
"""

#: Peak-RSS bound for ingesting a million-access gzip trace.  The
#: interpreter + numpy alone cost ~60–150 MiB; the chunked reader must
#: not add more than runs-proportional state on top (docs/traces.md).
RSS_BOUND_MIB = 512


@pytest.mark.slow
class TestBoundedMemory:
    def test_million_access_trace_bounded_rss(self, tmp_path):
        path = tmp_path / "k6_big.trc.gz"
        accesses = 1_000_000
        synthesize_k6_trace(path, accesses=accesses, footprint_pages=8192,
                            seed=2)
        src = str(Path(__file__).resolve().parents[2] / "src")
        script = RSS_SCRIPT.format(src=src, path=str(path), accesses=accesses)
        proc = subprocess.run([sys.executable, "-c", script],
                              capture_output=True, text=True, check=True)
        peak_kib = int(proc.stdout.strip())
        assert peak_kib < RSS_BOUND_MIB * 1024, (
            f"peak RSS {peak_kib / 1024:.0f} MiB exceeds the "
            f"{RSS_BOUND_MIB} MiB ingestion bound"
        )
