"""Unit tests for the access-pattern generators."""

import numpy as np
import pytest

from repro.workloads.patterns import (
    PatternParams,
    far_region_bounds,
    generate_page_runs,
    partition_bounds,
)

def RNG(seed=0):
    return np.random.default_rng(seed)


def params(pattern="random", footprint=1024, p_reuse=0.0, window=16, seq=0.0, **kw):
    return PatternParams(
        pattern=pattern, footprint_pages=footprint, p_reuse=p_reuse,
        reuse_window=window, seq_frac=seq, **kw,
    )


class TestValidation:
    def test_unknown_pattern(self):
        with pytest.raises(ValueError, match="unknown pattern"):
            params(pattern="zigzag")

    def test_reuse_probability_bounds(self):
        with pytest.raises(ValueError):
            params(p_reuse=1.0)

    def test_reuse_plus_far_must_leave_new(self):
        with pytest.raises(ValueError, match="room for new"):
            params(p_reuse=0.6, far_frac=0.4, far_region_pages=10)

    def test_far_region_must_fit_footprint(self):
        with pytest.raises(ValueError, match="far_region_pages"):
            params(far_frac=0.1, far_region_pages=4096, footprint=1024)


class TestPartitionBounds:
    def test_covers_footprint_disjointly(self):
        bounds = [partition_bounds(g, 4, 1000) for g in range(4)]
        assert bounds[0][0] == 0
        assert bounds[-1][1] == 1000
        for (lo_a, hi_a), (lo_b, _) in zip(bounds, bounds[1:]):
            assert hi_a == lo_b
            assert hi_a > lo_a


class TestPatternSemantics:
    def test_pages_within_footprint(self):
        for pattern in ("random", "adjacent", "partition", "stride", "scatter_gather"):
            p = params(pattern=pattern, footprint=512)
            for gpu in range(4):
                pages = generate_page_runs(p, gpu, 4, 2000, RNG(gpu))
                assert pages.min() >= 0
                assert pages.max() < 512

    def test_partition_has_no_sharing(self):
        p = params(pattern="partition", footprint=1024, seq=0.5)
        touched = [
            set(generate_page_runs(p, g, 4, 3000, RNG(g)).tolist()) for g in range(4)
        ]
        for a in range(4):
            for b in range(a + 1, 4):
                assert not (touched[a] & touched[b])

    def test_random_is_heavily_shared(self):
        p = params(pattern="random", footprint=256)
        touched = [
            set(generate_page_runs(p, g, 4, 4000, RNG(g)).tolist()) for g in range(4)
        ]
        shared_all = touched[0] & touched[1] & touched[2] & touched[3]
        assert len(shared_all) > 0.8 * 256

    def test_adjacent_shares_only_with_neighbors(self):
        p = params(pattern="adjacent", footprint=4096, overlap_frac=0.3, halo_frac=0.5)
        touched = [
            set(generate_page_runs(p, g, 4, 6000, RNG(g)).tolist()) for g in range(4)
        ]
        # Neighbours overlap...
        assert touched[0] & touched[1]
        # ...and each GPU keeps a private core in its own partition.
        lo, hi = partition_bounds(0, 4, 4096)
        own_core = {v for v in touched[0] if lo <= v < hi}
        assert len(own_core) > len(touched[0]) / 2

    def test_scatter_gather_touches_remote_partitions(self):
        p = params(pattern="scatter_gather", footprint=4096, local_frac=0.5)
        pages = generate_page_runs(p, 0, 4, 8000, RNG(1))
        lo, hi = partition_bounds(0, 4, 4096)
        remote = np.count_nonzero((pages < lo) | (pages >= hi))
        assert 0.3 < remote / len(pages) < 0.7

    def test_stride_shares_pairwise(self):
        p = params(pattern="stride", footprint=2048, seq=0.5)
        touched = [
            set(generate_page_runs(p, g, 4, 4000, RNG(g)).tolist()) for g in range(4)
        ]
        # Butterfly partners exchange data, so some cross-partition sharing
        # must exist.
        assert touched[0] & touched[1]

    def test_single_gpu_uses_whole_footprint(self):
        p = params(pattern="partition", footprint=512, seq=1.0)
        pages = generate_page_runs(p, 0, 1, 2000, RNG(0))
        assert len(set(pages.tolist())) == 512


class TestLocalityOverlays:
    def test_near_reuse_shrinks_unique_pages(self):
        base = params(pattern="random", footprint=4096)
        local = params(pattern="random", footprint=4096, p_reuse=0.8, window=32)
        n = 5000
        unique_base = len(set(generate_page_runs(base, 0, 1, n, RNG(3)).tolist()))
        unique_local = len(set(generate_page_runs(local, 0, 1, n, RNG(3)).tolist()))
        assert unique_local < unique_base / 2

    def test_far_uniform_draws_stay_in_hot_set(self):
        p = params(
            pattern="partition", footprint=4096,
            far_frac=0.5, far_region_pages=512,
        )
        pages = generate_page_runs(p, 1, 4, 5000, RNG(4))
        lo, hi = far_region_bounds(p, 1, 4)
        in_hot = np.count_nonzero((pages >= lo) & (pages < hi))
        assert in_hot >= 0.4 * len(pages)

    def test_far_cyclic_sweeps_in_order(self):
        p = params(
            pattern="random", footprint=4096,
            far_frac=0.99, p_reuse=0.0, far_region_pages=256, far_cyclic=True,
        )
        pages = generate_page_runs(p, 0, 1, 1000, RNG(5))
        # Nearly every access is a cyclic sweep of the 256-page hot set:
        # consecutive far pages differ by exactly 1 (mod 256).
        far = pages[pages < 256]
        diffs = np.diff(far) % 256
        assert np.count_nonzero(diffs == 1) > 0.9 * len(diffs)

    def test_far_region_partitioned_for_partition_pattern(self):
        p = params(
            pattern="partition", footprint=4096,
            far_frac=0.3, far_region_pages=1024,
        )
        bounds = [far_region_bounds(p, g, 4) for g in range(4)]
        for g, (lo, hi) in enumerate(bounds):
            plo, phi = partition_bounds(g, 4, 4096)
            assert plo <= lo < hi <= phi
            assert hi - lo == 256

    def test_far_region_shared_for_random_pattern(self):
        p = params(pattern="random", footprint=4096, far_frac=0.3, far_region_pages=1024)
        assert far_region_bounds(p, 0, 4) == far_region_bounds(p, 3, 4) == (0, 1024)


class TestDeterminism:
    def test_same_seed_same_trace(self):
        p = params(pattern="scatter_gather", footprint=2048, p_reuse=0.5, window=64)
        a = generate_page_runs(p, 2, 4, 3000, RNG(11))
        b = generate_page_runs(p, 2, 4, 3000, RNG(11))
        assert np.array_equal(a, b)

    def test_zero_runs(self):
        p = params()
        assert len(generate_page_runs(p, 0, 4, 0, RNG(0))) == 0
