"""Request canonicalization: service JSON must fingerprint exactly like
the CLI's own :class:`JobSpec` construction — the daemon's dedup
guarantees rest on this property."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.presets import resolve_preset
from repro.sim.cache import fingerprint_digest
from repro.sim.parallel import JobSpec, expand_matrix, select_benches
from repro.serve.requests import (
    MAX_JOBS_PER_REQUEST,
    RequestError,
    infer_kind,
    parse_job,
    parse_request,
    spec_request,
)

WORKLOADS = st.sampled_from(["MM", "FFT", "ST", "W1", "W5", "W17"])
POLICIES = st.sampled_from(["baseline", "least-tlb", "tlb-probing"])
BACKENDS = st.sampled_from(["event", "functional", "vectorized"])

JOB_PAYLOADS = st.fixed_dictionaries(
    {"workload": WORKLOADS},
    optional={
        "policy": POLICIES,
        "scale": st.floats(min_value=0.01, max_value=2.0,
                           allow_nan=False, allow_infinity=False),
        "seed": st.integers(min_value=0, max_value=2**31),
        "backend": BACKENDS,
        "shards": st.integers(min_value=1, max_value=4),
        "options": st.fixed_dictionaries({}, optional={
            "record_stream": st.booleans(),
            "timeline": st.integers(min_value=0, max_value=10_000),
            "max_events": st.integers(min_value=0, max_value=10**6),
            "check_invariants": st.booleans(),
        }),
    },
)


class TestParseJob:
    @settings(max_examples=60, deadline=None)
    @given(payload=JOB_PAYLOADS)
    def test_round_trip_preserves_fingerprint(self, payload):
        """parse → journal form → parse again must hit the same digest
        (what makes a drained-and-resubmitted job a cache hit)."""
        spec = parse_job(payload)
        journalled = spec_request(spec)
        assert journalled is not None  # baseline-config jobs round-trip
        again = parse_job(journalled)
        assert fingerprint_digest(again.fingerprint()) == \
            fingerprint_digest(spec.fingerprint())
        assert again == spec

    @settings(max_examples=30, deadline=None)
    @given(payload=JOB_PAYLOADS)
    def test_parse_is_deterministic(self, payload):
        assert parse_job(payload) == parse_job(dict(payload))

    def test_bench_request_matches_local_bench_fingerprints(self):
        """A ``benches`` submission must produce exactly the fingerprints
        a local ``repro bench`` of the same flags computes, so the daemon
        and the CLI share persistent cache entries."""
        local = expand_matrix(select_benches("fig02"), scale=0.2, seed=7,
                              backend="functional", shards=1)
        served = parse_request({"benches": ["fig02"], "scale": 0.2,
                                "seed": 7, "backend": "functional"})
        assert [
            fingerprint_digest(s.fingerprint()) for _b, s in served.pairs
        ] == [fingerprint_digest(s.fingerprint()) for _b, s in local]

    def test_explicit_job_matches_bench_matrix_without_seed(self):
        """With no seed and the baseline config, an explicit job shares
        its cache entry with the identical bench-matrix spec."""
        matrix_spec = JobSpec(kind="single", workload="MM",
                              policy="baseline", config=None, scale=0.2,
                              seed=None, options=(), backend="functional",
                              shards=1)
        served = parse_job({"workload": "MM", "scale": 0.2,
                            "backend": "functional"})
        assert fingerprint_digest(served.fingerprint()) == \
            fingerprint_digest(matrix_spec.fingerprint())

    def test_seed_derives_config_like_repro_run(self):
        """``repro run --seed N`` derives the config seed; a served job
        must fingerprint the same way to stay bit-compatible."""
        spec = parse_job({"workload": "MM", "seed": 11, "config": "dws"})
        expected = JobSpec(
            kind="single", workload="MM", policy="baseline",
            config=resolve_preset("dws").derive(seed=11),
            scale=0.3, seed=11, options=(), backend="event", shards=1,
        )
        assert fingerprint_digest(spec.fingerprint()) == \
            fingerprint_digest(expected.fingerprint())

    def test_kind_inference(self):
        assert infer_kind("MM") == "single"
        assert infer_kind("W3") == "multi"
        assert infer_kind("W17") == "mix"
        with pytest.raises(RequestError):
            infer_kind("NOPE")

    @pytest.mark.parametrize("payload", [
        {"workload": "MM", "bogus": 1},
        {"workload": "NOPE"},
        {"workload": "MM", "policy": "nope"},
        {"workload": "MM", "config": "nope"},
        {"workload": "MM", "scale": 0.0},
        {"workload": "MM", "scale": 99.0},
        {"workload": "MM", "seed": -1},
        {"workload": "MM", "backend": "quantum"},
        {"workload": "MM", "shards": 0},
        {"workload": "MM", "options": {"unknown": 1}},
        {"workload": "MM", "options": {"record_stream": "yes"}},
        {"workload": "MM", "kind": "mix"},  # MM is not a mix workload
        {"policy": "baseline"},  # workload missing
    ])
    def test_malformed_jobs_rejected(self, payload):
        with pytest.raises(RequestError):
            parse_job(payload)


class TestParseRequest:
    def test_jobs_and_benches_combine(self):
        parsed = parse_request({
            "jobs": [{"workload": "MM", "scale": 0.1}],
            "benches": ["fig02"],
            "scale": 0.1, "seed": 0, "backend": "functional",
        })
        assert len(parsed.pairs) == 1 + len(
            expand_matrix(select_benches("fig02"), scale=0.1, seed=0,
                          backend="functional", shards=1))

    def test_client_field(self):
        parsed = parse_request({"client": "alice",
                                "jobs": [{"workload": "MM"}]})
        assert parsed.client == "alice"

    @pytest.mark.parametrize("payload", [
        None,
        [],
        {},
        {"jobs": []},
        {"benches": []},
        {"benches": ["no-such-family"]},
        {"jobs": [{"workload": "MM"}], "bogus": True},
        {"client": "", "jobs": [{"workload": "MM"}]},
        {"client": "x" * 65, "jobs": [{"workload": "MM"}]},
        {"benches": ["*"], "scale": -1.0},
    ])
    def test_malformed_requests_rejected(self, payload):
        with pytest.raises(RequestError):
            parse_request(payload)

    def test_job_count_limit(self):
        with pytest.raises(RequestError, match="limit"):
            parse_request({
                "jobs": [{"workload": "MM", "seed": i}
                         for i in range(MAX_JOBS_PER_REQUEST + 1)],
            })
