"""Event-loop hygiene: disk I/O never runs on the loop thread.

These are the regression tests for the C1 findings staticcheck raised
against the service layer: every journal touch and every persistent
cache read reachable from an ``async def`` must hop to a worker thread
(``asyncio.to_thread``).  Each test instruments one fixed site with a
thread recorder and asserts the blocking call happened — and happened
off the loop thread.
"""

import asyncio
import threading

import pytest

from repro.serve.app import ServeApp, ServeSettings
from repro.serve.requests import parse_job
from repro.sim.cache import ResultCache
from repro.sim.parallel import JobOutcome

JOB = {"workload": "MM", "policy": "baseline", "scale": 0.02, "seed": 3,
       "backend": "functional"}


@pytest.fixture(scope="module")
def tiny_result():
    return parse_job(JOB).execute()


class ThreadRecorder:
    """Wraps a callable; records the thread ident of every invocation."""

    def __init__(self, fn):
        self.fn = fn
        self.idents: list[int] = []

    def __call__(self, *args, **kwargs):
        self.idents.append(threading.get_ident())
        return self.fn(*args, **kwargs)

    def ran_only_off(self, loop_ident: int) -> bool:
        return bool(self.idents) and loop_ident not in self.idents


def instant_executor(result, cache=None):
    def execute(task, tick):
        tick()
        if cache is not None:
            cache.put(task.fingerprint, result)
        return JobOutcome(
            spec=task.spec, digest=task.digest, benches=task.benches,
            cached=False, seconds=0.01, events=result.events_executed,
            total_cycles=result.total_cycles, result=result,
        )
    return execute


def make_app(tmp_path, execute):
    cache = ResultCache(tmp_path / "cache")
    return ServeApp(ServeSettings(workers=1), cache=cache, execute=execute)


async def wait_until(predicate, timeout=15.0):
    for _ in range(int(timeout / 0.01)):
        if predicate():
            return
        await asyncio.sleep(0.01)
    raise AssertionError("condition not reached in time")


def test_start_opens_and_writes_journal_off_loop(tmp_path, tiny_result):
    execute = instant_executor(tiny_result)

    async def main():
        app = make_app(tmp_path, execute)
        opener = app.journal.open = ThreadRecorder(app.journal.open)
        writer = app.journal.write = ThreadRecorder(app.journal.write)
        loop_ident = threading.get_ident()
        await app.start()
        assert opener.ran_only_off(loop_ident)
        assert writer.ran_only_off(loop_ident)  # the "serve" banner event
        await app.drain()

    asyncio.run(main())


def test_run_task_terminal_journal_write_off_loop(tmp_path, tiny_result):
    execute = instant_executor(tiny_result)

    async def main():
        app = make_app(tmp_path, execute)
        await app.start()
        events: list[tuple[int, str]] = []
        inner_write = app.journal.write

        def write(event):
            events.append((threading.get_ident(), event["event"]))
            return inner_write(event)

        app.journal.write = write
        loop_ident = threading.get_ident()
        _s, body, _ = app.submit({"jobs": [JOB]}, "alice")
        await wait_until(
            lambda: app.job_terminal(app.store.jobs[body["job"]]))
        await wait_until(lambda: any(kind == "task" for _i, kind in events))
        assert all(ident != loop_ident for ident, _kind in events)
        await app.drain()

    asyncio.run(main())


def test_drain_journals_and_flushes_stats_off_loop(tmp_path, tiny_result):
    execute = instant_executor(tiny_result)

    async def main():
        app = make_app(tmp_path, execute)
        await app.start()
        writer = app.journal.write = ThreadRecorder(app.journal.write)
        closer = app.journal.close = ThreadRecorder(app.journal.close)
        flusher = app.cache.flush_session_stats = ThreadRecorder(
            app.cache.flush_session_stats)
        loop_ident = threading.get_ident()
        await app.drain()
        assert writer.ran_only_off(loop_ident)  # the "drain" summary event
        assert closer.ran_only_off(loop_ident)
        assert flusher.ran_only_off(loop_ident)

    asyncio.run(main())


def test_submit_async_prefetches_cache_reads_off_loop(tmp_path, tiny_result):
    cache = ResultCache(tmp_path / "cache")
    execute = instant_executor(tiny_result, cache=cache)

    async def main():
        app = ServeApp(ServeSettings(workers=1), cache=cache,
                       execute=execute)
        await app.start()
        _s, first, _ = app.submit({"jobs": [JOB]}, "warm")
        await wait_until(
            lambda: app.job_terminal(app.store.jobs[first["job"]]))
        app.store.tasks.clear()  # forget the in-memory result; disk remains

        getter = app.cache.get = ThreadRecorder(app.cache.get)
        fallback = app._cache_lookup = ThreadRecorder(app._cache_lookup)
        loop_ident = threading.get_ident()
        status, body, _ = await app.submit_async({"jobs": [JOB]}, "warm")
        assert status == 201
        assert body["dedup"]["cache"] == 1  # the hit came from the prefetch
        assert getter.ran_only_off(loop_ident)
        assert fallback.idents == []  # sync fallback never touched the loop
        await app.drain()

    asyncio.run(main())


def test_job_result_async_loads_evicted_result_off_loop(tmp_path, tiny_result):
    cache = ResultCache(tmp_path / "cache")
    execute = instant_executor(tiny_result, cache=cache)

    async def main():
        app = ServeApp(ServeSettings(workers=1), cache=cache,
                       execute=execute)
        await app.start()
        _s, body, _ = app.submit({"jobs": [JOB]}, "alice")
        job_id = body["job"]
        await wait_until(lambda: app.job_terminal(app.store.jobs[job_id]))
        for task in app.store.tasks.values():
            task.result = None  # simulate in-memory eviction

        getter = app.cache.get = ThreadRecorder(app.cache.get)
        fallback = app._cache_lookup = ThreadRecorder(app._cache_lookup)
        loop_ident = threading.get_ident()
        status, payload = await app.job_result_async(job_id)
        assert status == 200
        assert payload["tasks"][0]["result"] is not None
        assert getter.ran_only_off(loop_ident)
        assert fallback.idents == []
        await app.drain()

    asyncio.run(main())


def test_health_async_describes_cache_off_loop(tmp_path, tiny_result):
    execute = instant_executor(tiny_result)

    async def main():
        app = make_app(tmp_path, execute)
        await app.start()
        describer = app._cache_describe = ThreadRecorder(app._cache_describe)
        loop_ident = threading.get_ident()
        body = await app.health_async()
        assert body["cache"]["enabled"] is True
        assert describer.ran_only_off(loop_ident)
        await app.drain()

    asyncio.run(main())
