"""Weighted-fair queue unit tests, including the SFQ wait-ratio bound
that keeps a heavy client from starving a light one."""

import pytest

from repro.serve.fairness import FairQueue, QuotaExceeded


class TestQuota:
    def test_backpressure_at_limit(self):
        q = FairQueue(max_pending=3)
        for i in range(3):
            q.push("greedy", i)
        with pytest.raises(QuotaExceeded) as info:
            q.push("greedy", 99)
        assert info.value.client == "greedy"
        assert info.value.limit == 3
        # Other clients are unaffected by one client's full queue.
        q.push("light", 0)
        assert q.pending("light") == 1

    def test_pop_frees_quota(self):
        q = FairQueue(max_pending=1)
        q.push("c", 1)
        assert q.pop() == ("c", 1)
        q.push("c", 2)  # does not raise
        assert q.pending("c") == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            FairQueue(max_pending=0)
        with pytest.raises(ValueError):
            FairQueue(default_weight=0.0)
        with pytest.raises(ValueError):
            FairQueue(weights={"a": -1.0})


class TestFairness:
    def test_light_client_not_starved(self):
        """The SFQ bound: a late light client's first item pops after at
        most ~one item per competing client, not after the heavy
        client's whole backlog."""
        q = FairQueue(max_pending=1000)
        for i in range(200):
            q.push("heavy", f"h{i}")
        q.push("light", "l0")
        popped_before_light = 0
        while True:
            client, _item = q.pop()
            if client == "light":
                break
            popped_before_light += 1
        assert popped_before_light <= 2

    def test_weighted_share(self):
        """A weight-3 client should receive ~3x the service of a
        weight-1 client while both are backlogged."""
        q = FairQueue(max_pending=1000, weights={"gold": 3.0})
        for i in range(90):
            q.push("gold", i)
            q.push("basic", i)
        first = [q.pop()[0] for _ in range(40)]
        gold = first.count("gold")
        basic = first.count("basic")
        assert gold / max(basic, 1) >= 2.0

    def test_cost_charges_virtual_time(self):
        """Big jobs charge their client more virtual time, so a client
        submitting huge jobs yields the pool between them."""
        q = FairQueue(max_pending=1000)
        for i in range(5):
            q.push("big", f"b{i}", cost=10.0)
        for i in range(5):
            q.push("small", f"s{i}", cost=0.1)
        order = [q.pop() for _ in range(10)]
        # All small jobs run before the heavy backlog finishes.
        small_positions = [i for i, (c, _x) in enumerate(order) if c == "small"]
        assert max(small_positions) <= 5

    def test_fifo_within_client(self):
        q = FairQueue()
        for i in range(10):
            q.push("c", i)
        assert [q.pop()[1] for _ in range(10)] == list(range(10))

    def test_drain_empties_everything(self):
        q = FairQueue()
        for i in range(4):
            q.push("a", i)
            q.push("b", i)
        drained = list(q.drain())
        assert len(drained) == 8
        assert len(q) == 0
        assert q.clients() == {}
