"""Service-core behaviour: in-flight dedup, backpressure, drain.

These drive :class:`ServeApp` directly on an event loop with an
injectable executor (a threading gate standing in for a simulation), so
the concurrency contracts are tested without simulation wall-time.  One
real tiny simulation provides the result payload.
"""

import asyncio
import threading

import pytest

from repro.serve.app import ServeApp, ServeSettings
from repro.serve.requests import parse_job
from repro.sim.cache import ResultCache
from repro.sim.parallel import JobOutcome

JOB = {"workload": "MM", "policy": "baseline", "scale": 0.02, "seed": 3,
       "backend": "functional"}


@pytest.fixture(scope="module")
def tiny_result():
    """One real (tiny) simulation result reused as every fake outcome."""
    return parse_job(JOB).execute()


class GatedExecutor:
    """Counts executions; optionally blocks until released."""

    def __init__(self, result, *, gated=False, cache=None, fail=False):
        self.result = result
        self.gate = threading.Event()
        if not gated:
            self.gate.set()
        self.cache = cache
        self.fail = fail
        self.lock = threading.Lock()
        self.executed = 0

    def __call__(self, task, tick):
        with self.lock:
            self.executed += 1
        assert self.gate.wait(timeout=30), "executor gate never released"
        tick()
        if self.fail:
            return JobOutcome(
                spec=task.spec, digest=task.digest, benches=task.benches,
                cached=False, seconds=0.01, events=0, total_cycles=0,
                result=None, status="crashed", attempts=2,
                error={"class": "WorkerCrash", "message": "boom"},
            )
        if self.cache is not None:
            self.cache.put(task.fingerprint, self.result)
        return JobOutcome(
            spec=task.spec, digest=task.digest, benches=task.benches,
            cached=False, seconds=0.01,
            events=self.result.events_executed,
            total_cycles=self.result.total_cycles,
            result=self.result,
        )


def make_app(tmp_path, execute, **settings):
    defaults = dict(workers=1, max_pending=8)
    defaults.update(settings)
    cache = ResultCache(tmp_path / "cache")
    return ServeApp(ServeSettings(**defaults), cache=cache, execute=execute)


async def wait_until(predicate, timeout=15.0):
    for _ in range(int(timeout / 0.01)):
        if predicate():
            return
        await asyncio.sleep(0.01)
    raise AssertionError("condition not reached in time")


def drain_queue(queue):
    events = []
    while not queue.empty():
        events.append(queue.get_nowait())
    return events


class TestInflightDedup:
    def test_identical_submissions_execute_once(self, tmp_path, tiny_result):
        async def main():
            executor = GatedExecutor(tiny_result, gated=True)
            app = make_app(tmp_path, executor)
            await app.start()
            s1, b1, _ = app.submit({"jobs": [JOB]}, "alice")
            await wait_until(lambda: app.pool.busy == 1)
            s2, b2, _ = app.submit({"jobs": [JOB]}, "bob")
            assert (s1, s2) == (201, 201)
            assert b1["dedup"]["new"] == 1
            assert b2["dedup"] == {"matrix": 0, "cache": 0, "inflight": 1,
                                   "new": 0}
            # Two subscribers attach to the one running task.
            job1, q1 = app.subscribe(b1["job"])
            job2, q2 = app.subscribe(b2["job"])
            executor.gate.set()
            await wait_until(lambda: app.job_terminal(job1)
                             and app.job_terminal(job2))
            assert executor.executed == 1  # the dedup contract
            for queue in (q1, q2):
                kinds = [e["event"] for e in drain_queue(queue)]
                assert "task_finished" in kinds
                assert "job_done" in kinds
            status, body = app.job_result(b2["job"])
            assert status == 200
            assert body["tasks"][0]["source"] == "run"
            await self._shutdown(app)

        asyncio.run(main())

    async def _shutdown(self, app):
        await app.drain()

    def test_resubmit_after_completion_hits_cache(self, tmp_path, tiny_result):
        async def main():
            cache = ResultCache(tmp_path / "cache")
            executor = GatedExecutor(tiny_result, cache=cache)
            app = ServeApp(ServeSettings(workers=1), cache=cache,
                           execute=executor)
            await app.start()
            _s, b1, _ = app.submit({"jobs": [JOB]}, "alice")
            job1 = app.store.jobs[b1["job"]]
            await wait_until(lambda: app.job_terminal(job1))
            _s, b2, _ = app.submit({"jobs": [JOB]}, "bob")
            assert b2["state"] == "done"
            assert b2["dedup"]["cache"] == 1
            assert executor.executed == 1
            assert app.store.stats["dedup_cache"] == 1
            await app.drain()

        asyncio.run(main())

    def test_matrix_dedup_within_request(self, tmp_path, tiny_result):
        async def main():
            app = make_app(tmp_path, GatedExecutor(tiny_result))
            await app.start()
            _s, body, _ = app.submit({"jobs": [JOB, dict(JOB)]}, "alice")
            assert body["dedup"]["matrix"] == 1
            assert body["counts"]["total"] == 1
            await wait_until(
                lambda: app.job_terminal(app.store.jobs[body["job"]]))
            await app.drain()

        asyncio.run(main())


class TestBackpressure:
    def test_quota_exceeded_is_429_with_retry_after(self, tmp_path, tiny_result):
        async def main():
            executor = GatedExecutor(tiny_result, gated=True)
            app = make_app(tmp_path, executor, workers=1, max_pending=1)
            await app.start()
            jobs = [dict(JOB, seed=i) for i in range(3)]
            s1, _b, _ = app.submit({"jobs": [jobs[0]]}, "greedy")
            await wait_until(lambda: app.pool.busy == 1)  # slot taken
            s2, _b, _ = app.submit({"jobs": [jobs[1]]}, "greedy")
            s3, body, headers = app.submit({"jobs": [jobs[2]]}, "greedy")
            assert (s1, s2, s3) == (201, 201, 429)
            assert "Retry-After" in headers
            assert body["retry_after"] >= 1
            assert app.rejections == 1
            # The other client is unaffected by greedy's full queue.
            s4, _b, _ = app.submit({"jobs": [dict(JOB, seed=9)]}, "light")
            assert s4 == 201
            executor.gate.set()
            await wait_until(lambda: not app.store.queued_tasks()
                             and not app.store.running_tasks())
            await app.drain()

        asyncio.run(main())

    def test_whole_request_rejected_atomically(self, tmp_path, tiny_result):
        """A request that would overflow the quota admits none of its
        jobs — no partial enqueue."""
        async def main():
            executor = GatedExecutor(tiny_result, gated=True)
            app = make_app(tmp_path, executor, workers=1, max_pending=2)
            await app.start()
            status, _b, _ = app.submit(
                {"jobs": [dict(JOB, seed=i) for i in range(10)]}, "greedy")
            assert status == 429
            assert app.queue.pending("greedy") == 0
            assert not app.store.tasks
            executor.gate.set()
            await app.drain()

        asyncio.run(main())


class TestFailuresAndResults:
    def test_failed_outcome_fails_the_job(self, tmp_path, tiny_result):
        async def main():
            app = make_app(tmp_path, GatedExecutor(tiny_result, fail=True))
            await app.start()
            _s, body, _ = app.submit({"jobs": [JOB]}, "alice")
            job = app.store.jobs[body["job"]]
            await wait_until(lambda: app.job_terminal(job))
            assert app.store.job_state(job) == "failed"
            status, result = app.job_result(body["job"])
            assert status == 200
            task = result["tasks"][0]
            assert task["state"] == "failed"
            assert task["error"]["class"] == "WorkerCrash"
            assert task["result"] is None
            assert app.store.stats["tasks_failed"] == 1
            await app.drain()

        asyncio.run(main())

    def test_result_endpoint_lifecycle(self, tmp_path, tiny_result):
        async def main():
            executor = GatedExecutor(tiny_result, gated=True)
            app = make_app(tmp_path, executor)
            await app.start()
            assert app.job_result("job-999999")[0] == 404
            assert app.job_status("job-999999") is None
            _s, body, _ = app.submit({"jobs": [JOB]}, "alice")
            status, pending = app.job_result(body["job"])
            assert status == 202
            assert pending["state"] in ("queued", "running")
            executor.gate.set()
            job = app.store.jobs[body["job"]]
            await wait_until(lambda: app.job_terminal(job))
            status, done = app.job_result(body["job"])
            assert status == 200
            assert done["tasks"][0]["result"]["events_executed"] == \
                tiny_result.events_executed
            await app.drain()

        asyncio.run(main())


class TestDrain:
    def test_drain_finishes_running_and_journals_queued(self, tmp_path,
                                                        tiny_result):
        async def main():
            executor = GatedExecutor(tiny_result, gated=True)
            app = make_app(tmp_path, executor, workers=1)
            await app.start()
            bodies = []
            for i in range(3):
                status, body, _ = app.submit(
                    {"jobs": [dict(JOB, seed=i)]}, "alice")
                assert status == 201
                bodies.append(body)
            await wait_until(lambda: app.pool.busy == 1)
            queued_job = app.store.jobs[bodies[2]["job"]]
            _job, queue = app.subscribe(bodies[2]["job"])
            drainer = asyncio.ensure_future(app.drain())
            await asyncio.sleep(0.05)
            # New submissions are refused the moment draining starts.
            status, _b, headers = app.submit({"jobs": [JOB]}, "bob")
            assert status == 503
            assert "Retry-After" in headers
            executor.gate.set()
            drained = await drainer
            assert drained == {"completed": 1, "journaled": 2}
            assert app.state == "stopped"
            assert executor.executed == 1  # queued jobs never started
            # The subscriber of a journalled job sees a terminal event.
            kinds = [e["event"] for e in drain_queue(queue)]
            assert "job_done" in kinds
            # The journal records every submitted digest exactly once.
            journal = await asyncio.to_thread(
                (app.cache.cache_dir / "serve-journal.jsonl").read_text
            )
            submitted = {b["tasks"][0]["digest"] for b in bodies}
            for digest in submitted:
                assert journal.count(digest) == 1
            assert app.store.job_state(queued_job) in ("queued", "running")

        asyncio.run(main())

    def test_drain_is_idempotent(self, tmp_path, tiny_result):
        async def main():
            app = make_app(tmp_path, GatedExecutor(tiny_result))
            await app.start()
            first = await app.drain()
            second = await app.drain()
            assert first == second

        asyncio.run(main())
