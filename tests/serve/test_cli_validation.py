"""Usage-error paths of the serve-related CLI surfaces (exit 2,
``error:`` prefix — the repo convention)."""

import pytest

from repro.cli import main


@pytest.mark.parametrize("argv", [
    ["serve", "--workers", "0"],
    ["serve", "--max-pending", "0"],
    ["serve", "--retries", "-1"],
    ["serve", "--job-timeout", "0"],
    ["serve", "--default-weight", "0"],
    ["serve", "--weight", "alice"],          # missing =WEIGHT
    ["serve", "--weight", "alice=fast"],     # not a number
    ["serve", "--weight", "alice=-2"],       # non-positive
    ["serve", "--weight", "=2.0"],           # empty client name
])
def test_serve_usage_errors(argv, capsys):
    with pytest.raises(SystemExit) as info:
        main(argv)
    assert info.value.code == 2
    assert capsys.readouterr().err.startswith("error:")


@pytest.mark.parametrize("argv", [
    ["run", "MM", "--server", "http://x", "--profile"],
    ["run", "MM", "--server", "http://x", "--trace"],
    ["run", "MM", "--server", "http://x", "--faults", "drop-remote:0.01"],
    ["run", "./missing.npz", "--server", "http://x"],
    ["bench", "--server", "http://x", "--chaos", "kill-worker:1"],
    ["bench", "--server", "http://x", "--profile"],
    ["bench", "--server", "http://x", "--resume"],
    ["bench", "--server", "http://x", "--no-cache"],
    ["bench", "--server", "http://x", "--jobs", "4"],
])
def test_server_mode_flag_conflicts(argv, capsys):
    """Local-only flags are rejected before any network traffic."""
    with pytest.raises(SystemExit) as info:
        main(argv)
    assert info.value.code == 2
    assert capsys.readouterr().err.startswith("error:")


def test_unreachable_server_is_a_clean_error(capsys):
    code = main(["run", "MM", "--scale", "0.02",
                 "--server", "http://127.0.0.1:9", "--wait-timeout", "1"])
    assert code == 3
    assert "error:" in capsys.readouterr().err
