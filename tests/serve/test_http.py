"""HTTP transport integration: real server thread, real client, real
(tiny) simulations; plus the SIGTERM graceful-drain contract against an
actual ``repro serve`` subprocess."""

import json
import os
import re
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.serve.api import MAX_HEADER_LINES, ServerThread
from repro.serve.app import ServeApp, ServeSettings
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.requests import parse_job
from repro.sim.cache import ResultCache
from repro.sim.parallel import JobOutcome

SRC = str(Path(__file__).resolve().parents[2] / "src")

JOB = {"workload": "MM", "policy": "baseline", "scale": 0.02, "seed": 3,
       "backend": "functional"}


@pytest.fixture()
def server(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    app = ServeApp(ServeSettings(workers=2), cache=cache)
    thread = ServerThread(app)
    url = thread.start()
    yield url, app
    thread.stop()


class TestHttpApi:
    def test_health_and_submit_lifecycle(self, server):
        url, app = server
        client = ServeClient(url, client_name="t")
        health = client.health()
        assert health["status"] == "serving"
        assert health["workers"] == 2

        submitted = client.submit({"jobs": [JOB]})
        assert re.fullmatch(r"job-\d{6}", submitted["job"])
        body = client.wait(submitted["job"], timeout=120)
        assert body["state"] == "done"
        task = body["tasks"][0]
        assert task["source"] == "run"
        assert task["result"]["events_executed"] > 0

        # Second submission: persistent-cache dedup, zero extra work.
        again = client.submit({"jobs": [JOB]})
        assert again["state"] == "done"
        assert again["dedup"]["cache"] == 1
        assert app.store.stats["tasks_executed"] == 1

        stats = client.cache_stats()
        assert stats["entries"] == 1
        assert stats["session"]["stores"] == 1

    def test_concurrent_identical_submissions_run_once(self, server):
        """The acceptance demo: two clients race the same fingerprint;
        the daemon executes exactly once and both get full results."""
        url, app = server
        results = {}

        def submit_and_wait(name):
            c = ServeClient(url, client_name=name)
            job = c.submit({"jobs": [JOB]})
            results[name] = (job, c.wait(job["job"], timeout=120))

        threads = [threading.Thread(target=submit_and_wait, args=(n,))
                   for n in ("alice", "bob")]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert set(results) == {"alice", "bob"}
        bodies = [body for _job, body in results.values()]
        assert all(b["state"] == "done" for b in bodies)
        # Exactly one real execution; the other submission was served by
        # in-flight attach or the persistent cache.
        assert app.store.stats["tasks_executed"] == 1
        dedup = app.store.stats
        assert dedup["dedup_inflight"] + dedup["dedup_cache"] == 1
        # Bit-identical results for both subscribers.
        a, b = (body["tasks"][0]["result"] for body in bodies)
        assert a == b

    def test_sse_stream(self, server):
        url, _app = server
        client = ServeClient(url, client_name="t")
        submitted = client.submit({"jobs": [JOB]})
        events = list(client.events(submitted["job"]))
        kinds = [e["event"] for e in events]
        assert kinds[0] == "snapshot"
        assert kinds[-1] == "job_done"
        finished = [e for e in events if e["event"] == "task_finished"]
        if finished:  # may race completion; snapshot+job_done then
            assert finished[0]["state"] == "done"

    def test_error_statuses(self, server):
        url, _app = server
        client = ServeClient(url, client_name="t")
        with pytest.raises(ServeClientError) as info:
            client.submit({"jobs": [{"workload": "NOPE"}]})
        assert info.value.status == 400
        with pytest.raises(ServeClientError) as info:
            client.job("job-999999")
        assert info.value.status == 404
        with pytest.raises(ServeClientError) as info:
            client.result("job-999999")
        assert info.value.status == 404

    def test_wrong_method_is_405(self, server):
        url, _app = server
        client = ServeClient(url, client_name="t")
        with pytest.raises(ServeClientError) as info:
            client._request("GET", "/v1/jobs")
        assert info.value.status == 405
        assert "POST" in info.value.body["error"]
        with pytest.raises(ServeClientError) as info:
            client._request("POST", "/v1/health", {})
        assert info.value.status == 405

    def test_oversized_header_section_is_431(self, server):
        url, _app = server
        host, port = url.removeprefix("http://").rsplit(":", 1)
        request = [b"GET /v1/health HTTP/1.1\r\n"]
        request += [f"X-Flood-{i}: x\r\n".encode()
                    for i in range(MAX_HEADER_LINES + 1)]
        request.append(b"\r\n")
        with socket.create_connection((host, int(port)), timeout=30) as sock:
            sock.sendall(b"".join(request))
            reply = sock.recv(65536)
        assert b"431" in reply.split(b"\r\n", 1)[0]

    def test_backpressure_over_http(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        app = ServeApp(
            ServeSettings(workers=1, max_pending=1), cache=cache)
        thread = ServerThread(app)
        url = thread.start()
        try:
            client = ServeClient(url, client_name="greedy")
            # A burst of distinct jobs must eventually hit 429.
            saw_429 = None
            for i in range(8):
                try:
                    client.submit({"jobs": [dict(JOB, seed=100 + i)]})
                except ServeClientError as exc:
                    assert exc.status == 429
                    saw_429 = exc
                    break
            assert saw_429 is not None, "quota never triggered"
            assert saw_429.retry_after is not None
            assert saw_429.retry_after >= 1
            # A different client is still admitted while greedy is full.
            other = ServeClient(url, client_name="light")
            accepted = other.submit({"jobs": [dict(JOB, seed=999)]})
            assert accepted["state"] in ("queued", "running", "done")
        finally:
            thread.stop()


class _GatedExecutor:
    """Blocks every execution until ``gate`` is set (drain-order tests)."""

    def __init__(self, result):
        self.result = result
        self.gate = threading.Event()

    def __call__(self, task, tick):
        assert self.gate.wait(timeout=60), "executor gate never released"
        tick()
        return JobOutcome(
            spec=task.spec, digest=task.digest, benches=task.benches,
            cached=False, seconds=0.01,
            events=self.result.events_executed,
            total_cycles=self.result.total_cycles,
            result=self.result,
        )


class TestGracefulDrain:
    def test_drain_completes_with_sse_subscriber_on_queued_job(self, tmp_path):
        """Regression: on Python 3.12+ ``Server.wait_closed()`` waits for
        every connection handler, and an SSE stream on a still-queued job
        only exits on the terminal event ``drain()`` publishes — so drain
        must run before ``wait_closed()`` or shutdown deadlocks."""
        executor = _GatedExecutor(parse_job(JOB).execute())
        app = ServeApp(ServeSettings(workers=1),
                       cache=ResultCache(tmp_path / "cache"),
                       execute=executor)
        thread = ServerThread(app)
        url = thread.start()
        client = ServeClient(url, client_name="t")
        client.submit({"jobs": [JOB]})  # occupies the only worker (gated)
        deadline = time.monotonic() + 60
        while app.pool.busy != 1:
            assert time.monotonic() < deadline, "first job never started"
            time.sleep(0.01)
        queued = client.submit({"jobs": [dict(JOB, seed=77)]})
        events = []
        streamer = threading.Thread(
            target=lambda: events.extend(client.events(queued["job"])))
        streamer.start()
        while not app.store.jobs[queued["job"]].subscribers:
            assert time.monotonic() < deadline, "SSE never subscribed"
            time.sleep(0.01)
        exit_codes = []
        stopper = threading.Thread(
            target=lambda: exit_codes.append(thread.stop(timeout=90)))
        stopper.start()
        while app.state != "draining":
            assert time.monotonic() < deadline, "drain never started"
            time.sleep(0.01)
        executor.gate.set()  # running job finishes; queued one is journaled
        stopper.join(timeout=120)
        assert exit_codes == [0], "drain deadlocked with an open SSE stream"
        streamer.join(timeout=30)
        assert not streamer.is_alive(), "SSE stream never saw a terminal event"
        assert events and events[-1]["event"] == "job_done"
        assert events[-1]["state"] == "drained"

    def test_sigterm_drains_without_losing_jobs(self, tmp_path):
        """SIGTERM mid-backlog: the daemon finishes or journals every
        submitted job, flushes, and exits 0 — nothing lost, nothing
        duplicated."""
        cache_dir = tmp_path / "cache"
        env = dict(os.environ, PYTHONPATH=SRC,
                   REPRO_CACHE_DIR=str(cache_dir))
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
             "--workers", "1"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env=env)
        try:
            match = re.match(r"serving on (http://\S+)",
                             proc.stdout.readline())
            assert match, "daemon never announced its URL"
            client = ServeClient(match.group(1), client_name="t")
            digests = []
            for i in range(4):
                body = client.submit(
                    {"jobs": [dict(JOB, seed=50 + i, scale=0.05)]})
                digests.append(body["tasks"][0]["digest"])
            proc.send_signal(signal.SIGTERM)
            rc = proc.wait(timeout=120)
            assert rc == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)

        journal_path = cache_dir / "serve-journal.jsonl"
        events = [json.loads(line)
                  for line in journal_path.read_text().splitlines()]
        terminal = {}
        for event in events:
            if event["event"] in ("task", "journaled"):
                terminal.setdefault(event["digest"], []).append(
                    event["event"])
        # Every submitted digest reached exactly one terminal record.
        assert set(terminal) == set(digests)
        assert all(len(records) == 1 for records in terminal.values())
        drains = [e for e in events if e["event"] == "drain"]
        assert len(drains) == 1
        assert drains[0]["completed"] + drains[0]["journaled"] == 4
        # A journalled entry is resubmittable (carries a request body).
        for event in events:
            if event["event"] == "journaled":
                assert event["request"]["workload"] == "MM"
