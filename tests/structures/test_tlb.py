"""Unit tests for the set-associative TLB models."""

import pytest

from repro.structures.tlb import InfiniteTLB, SetAssociativeTLB, TLBEntry


def make_entry(vpn, pid=1, ppn=None):
    return TLBEntry(pid=pid, vpn=vpn, ppn=ppn if ppn is not None else vpn + 1000)


class TestGeometry:
    def test_invalid_entries(self):
        with pytest.raises(ValueError):
            SetAssociativeTLB(num_entries=0, associativity=1)

    def test_associativity_must_divide(self):
        with pytest.raises(ValueError):
            SetAssociativeTLB(num_entries=10, associativity=4)

    def test_num_sets(self):
        tlb = SetAssociativeTLB(num_entries=512, associativity=16)
        assert tlb.num_sets == 32

    def test_fully_associative(self):
        tlb = SetAssociativeTLB(num_entries=16, associativity=16)
        assert tlb.num_sets == 1


class TestLookupInsert:
    def test_miss_then_hit(self):
        tlb = SetAssociativeTLB(num_entries=16, associativity=4)
        assert tlb.lookup(1, 5) is None
        tlb.insert(make_entry(5))
        found = tlb.lookup(1, 5)
        assert found is not None
        assert found.ppn == 1005
        assert tlb.stats.hits == 1
        assert tlb.stats.misses == 1

    def test_pid_is_part_of_tag(self):
        tlb = SetAssociativeTLB(num_entries=16, associativity=4)
        tlb.insert(make_entry(5, pid=1))
        assert tlb.lookup(2, 5) is None
        assert tlb.lookup(1, 5) is not None

    def test_insert_existing_refreshes_without_eviction(self):
        tlb = SetAssociativeTLB(num_entries=4, associativity=4)
        tlb.insert(make_entry(1))
        victim = tlb.insert(make_entry(1, ppn=777))
        assert victim is None
        assert tlb.peek(1, 1).ppn == 777
        assert len(tlb) == 1

    def test_eviction_returns_lru_victim(self):
        tlb = SetAssociativeTLB(num_entries=2, associativity=2)
        tlb.insert(make_entry(0))
        tlb.insert(make_entry(2))  # same set (2 % 1 == 0 % 1 with 1 set)
        victim = tlb.insert(make_entry(4))
        assert victim is not None
        assert victim.vpn == 0

    def test_lookup_promotes_lru(self):
        tlb = SetAssociativeTLB(num_entries=2, associativity=2)
        tlb.insert(make_entry(0))
        tlb.insert(make_entry(2))
        tlb.lookup(1, 0)  # promote vpn 0
        victim = tlb.insert(make_entry(4))
        assert victim.vpn == 2

    def test_touch_promotes_without_stats(self):
        tlb = SetAssociativeTLB(num_entries=2, associativity=2)
        tlb.insert(make_entry(0))
        tlb.insert(make_entry(2))
        hits_before = tlb.stats.hits
        assert tlb.touch(1, 0) is True
        assert tlb.stats.hits == hits_before
        victim = tlb.insert(make_entry(4))
        assert victim.vpn == 2

    def test_touch_missing_returns_false(self):
        tlb = SetAssociativeTLB(num_entries=4, associativity=4)
        assert tlb.touch(1, 9) is False

    def test_peek_and_contains_no_stats(self):
        tlb = SetAssociativeTLB(num_entries=4, associativity=4)
        tlb.insert(make_entry(1))
        assert tlb.peek(1, 1) is not None
        assert tlb.contains(1, 1)
        assert not tlb.contains(1, 2)
        assert tlb.stats.lookups == 0

    def test_set_indexing_by_vpn(self):
        tlb = SetAssociativeTLB(num_entries=8, associativity=2)  # 4 sets
        # Fill set 0 far beyond a single set's capacity via vpns % 4 == 0.
        for vpn in (0, 4, 8):
            tlb.insert(make_entry(vpn))
        assert len(tlb) == 2  # conflict evictions in set 0

    def test_lru_victim_preview(self):
        tlb = SetAssociativeTLB(num_entries=2, associativity=2)
        assert tlb.lru_victim(0) is None
        tlb.insert(make_entry(0))
        assert tlb.lru_victim(0) is None  # space remains
        tlb.insert(make_entry(2))
        assert tlb.lru_victim(4).vpn == 0
        # Preview must not evict.
        assert len(tlb) == 2


class TestRemoveInvalidate:
    def test_remove(self):
        tlb = SetAssociativeTLB(num_entries=4, associativity=4)
        tlb.insert(make_entry(1))
        removed = tlb.remove(1, 1)
        assert removed.vpn == 1
        assert tlb.remove(1, 1) is None
        assert len(tlb) == 0

    def test_invalidate_all(self):
        tlb = SetAssociativeTLB(num_entries=8, associativity=2)
        for vpn in range(4):
            tlb.insert(make_entry(vpn))
        assert tlb.invalidate_all() == 4
        assert len(tlb) == 0

    def test_invalidate_pid(self):
        tlb = SetAssociativeTLB(num_entries=8, associativity=8)
        tlb.insert(make_entry(1, pid=1))
        tlb.insert(make_entry(2, pid=2))
        tlb.insert(make_entry(3, pid=2))
        assert tlb.invalidate_pid(2) == 2
        assert tlb.contains(1, 1)
        assert len(tlb) == 1


class TestIntrospection:
    def test_iter_and_resident_keys(self):
        tlb = SetAssociativeTLB(num_entries=8, associativity=8)
        for vpn in range(3):
            tlb.insert(make_entry(vpn))
        assert {e.vpn for e in tlb.iter_entries()} == {0, 1, 2}
        assert tlb.resident_keys() == {(1, 0), (1, 1), (1, 2)}

    def test_occupancy(self):
        tlb = SetAssociativeTLB(num_entries=8, associativity=8)
        tlb.insert(make_entry(0))
        tlb.insert(make_entry(1))
        assert tlb.occupancy() == pytest.approx(0.25)

    def test_key_in_operator(self):
        tlb = SetAssociativeTLB(num_entries=8, associativity=8)
        tlb.insert(make_entry(5))
        assert (1, 5) in tlb
        assert (1, 6) not in tlb


class TestReplacementVariants:
    def test_fifo_does_not_promote_on_hit(self):
        tlb = SetAssociativeTLB(num_entries=2, associativity=2, replacement="fifo")
        tlb.insert(make_entry(0))
        tlb.insert(make_entry(2))
        tlb.lookup(1, 0)
        victim = tlb.insert(make_entry(4))
        assert victim.vpn == 0  # first in, first out, despite the hit

    def test_random_is_deterministic_under_seed(self):
        def run(seed):
            tlb = SetAssociativeTLB(
                num_entries=4, associativity=4, replacement="random", seed=seed
            )
            victims = []
            for vpn in range(12):
                victim = tlb.insert(make_entry(vpn * 4))
                if victim:
                    victims.append(victim.vpn)
            return victims

        assert run(3) == run(3)


class TestEntry:
    def test_copy_is_independent(self):
        entry = make_entry(7)
        clone = entry.copy()
        clone.spill_budget = 0
        assert entry.spill_budget == 1

    def test_key(self):
        assert make_entry(9, pid=3).key == (3, 9)


class TestInfiniteTLB:
    def test_never_evicts(self):
        tlb = InfiniteTLB()
        for vpn in range(10_000):
            assert tlb.insert(make_entry(vpn)) is None
        assert len(tlb) == 10_000
        assert tlb.lookup(1, 9_999) is not None

    def test_stats_still_counted(self):
        tlb = InfiniteTLB()
        tlb.lookup(1, 1)
        tlb.insert(make_entry(1))
        tlb.lookup(1, 1)
        assert tlb.stats.misses == 1
        assert tlb.stats.hits == 1

    def test_remove_and_invalidate(self):
        tlb = InfiniteTLB()
        tlb.insert(make_entry(1, pid=1))
        tlb.insert(make_entry(2, pid=2))
        assert tlb.remove(1, 1).vpn == 1
        assert tlb.invalidate_pid(2) == 1
        assert len(tlb) == 0

    def test_lru_victim_is_none(self):
        tlb = InfiniteTLB()
        tlb.insert(make_entry(1))
        assert tlb.lru_victim(1) is None
