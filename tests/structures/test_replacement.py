"""Unit tests for the replacement policies."""

from collections import OrderedDict

import pytest

from repro.structures.replacement import (
    FIFOPolicy,
    LRUPolicy,
    RandomPolicy,
    make_policy,
)


def make_set(keys):
    return OrderedDict((k, k) for k in keys)


def test_lru_victim_is_head_and_access_promotes():
    policy = LRUPolicy()
    tlb_set = make_set(["a", "b", "c"])
    assert policy.select_victim(tlb_set) == "a"
    policy.on_access(tlb_set, "a")
    assert policy.select_victim(tlb_set) == "b"


def test_fifo_access_does_not_promote():
    policy = FIFOPolicy()
    tlb_set = make_set(["a", "b"])
    policy.on_access(tlb_set, "a")
    assert policy.select_victim(tlb_set) == "a"


def test_random_peek_does_not_consume_rng():
    policy = RandomPolicy(seed=5)
    tlb_set = make_set(["a", "b", "c", "d"])
    peeked = [policy.select_victim(tlb_set, peek=True) for _ in range(3)]
    assert len(set(peeked)) == 1
    committed = [policy.select_victim(tlb_set) for _ in range(8)]
    assert set(committed) <= {"a", "b", "c", "d"}


def test_make_policy_names():
    assert isinstance(make_policy("lru"), LRUPolicy)
    assert isinstance(make_policy("FIFO"), FIFOPolicy)
    assert isinstance(make_policy("random", seed=1), RandomPolicy)


def test_make_policy_unknown():
    with pytest.raises(ValueError, match="unknown replacement policy"):
        make_policy("plru")
