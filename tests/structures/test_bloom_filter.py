"""Unit tests for the counting Bloom filter (tracker ablation comparator)."""

import pytest

from repro.structures.bloom_filter import CountingBloomFilter


def test_insert_contains_delete_roundtrip():
    filt = CountingBloomFilter(num_cells=512)
    filt.insert(1, 10)
    assert filt.contains(1, 10)
    assert filt.delete(1, 10)
    assert not filt.contains(1, 10)


def test_no_false_negatives_before_saturation():
    filt = CountingBloomFilter(num_cells=4096, num_hashes=2)
    keys = [(1, v) for v in range(300)]
    for pid, vpn in keys:
        filt.insert(pid, vpn)
    assert all(filt.contains(pid, vpn) for pid, vpn in keys)


def test_delete_of_absent_key_detectable_sometimes():
    filt = CountingBloomFilter(num_cells=512)
    filt.insert(1, 1)
    # A key with at least one zero cell is provably absent.
    absent_deletes = sum(not filt.delete(1, vpn) for vpn in range(100, 200))
    assert absent_deletes > 50
    assert filt.stats.failed_deletions > 0


def test_counter_saturation_does_not_underflow():
    filt = CountingBloomFilter(num_cells=4, num_hashes=1, counter_bits=2)
    for _ in range(10):
        filt.insert(1, 0)
    # Saturated at 3; deletes leave saturated cells untouched.
    for _ in range(10):
        filt.delete(1, 0)
    assert filt.contains(1, 0)  # stranded state, by design


def test_invalid_geometry():
    with pytest.raises(ValueError):
        CountingBloomFilter(num_cells=0)
    with pytest.raises(ValueError):
        CountingBloomFilter(num_cells=8, num_hashes=0)


def test_size_bytes():
    filt = CountingBloomFilter(num_cells=2048, counter_bits=4)
    assert filt.size_bytes() == pytest.approx(1024)


def test_clear():
    filt = CountingBloomFilter(num_cells=128)
    filt.insert(1, 5)
    filt.clear()
    assert not filt.contains(1, 5)
    assert len(filt) == 0
