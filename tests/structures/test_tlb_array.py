"""Differential tests: ``PackedTLB`` mirrors ``SetAssociativeTLB`` (LRU).

The functional backend's TLB state lives in packed-integer mirrors
(:mod:`repro.structures.tlb_array`); the contract is that set indexing,
LRU order, duplicate-refresh, and victim selection are bit-exact against
the reference object model.  These tests drive both through randomized
operation streams and compare full state after every step.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structures.tlb import InfiniteTLB, SetAssociativeTLB, TLBEntry
from repro.structures.tlb_array import (
    InfinitePackedTLB,
    PackedTLB,
    pack_key,
    pack_value,
    probe_tags,
    unpack_key,
    value_budget,
    value_owner,
    value_ppn,
)


class TestPacking:
    def test_key_roundtrip(self):
        for pid, vpn in [(0, 0), (1, 7), (255, (1 << 48) - 1), (12, 123456789)]:
            assert unpack_key(pack_key(pid, vpn)) == (pid, vpn)

    def test_value_fields(self):
        value = pack_value(ppn=0xABCDE, spill_budget=3, owner_gpu=2)
        assert value_ppn(value) == 0xABCDE
        assert value_budget(value) == 3
        assert value_owner(value) == 2

    def test_unowned_entry(self):
        value = pack_value(ppn=5, spill_budget=1, owner_gpu=-1)
        assert value_owner(value) == -1

    def test_keys_do_not_alias_across_pids(self):
        assert pack_key(1, 0) != pack_key(0, 1 << 47)


ops_st = st.lists(
    st.tuples(
        st.sampled_from(["insert", "lookup", "peek", "touch", "remove"]),
        st.integers(1, 2),     # pid
        st.integers(0, 20),    # vpn
    ),
    min_size=1,
    max_size=80,
)


def entry_tuple(entry):
    if entry is None:
        return None
    return (entry.pid, entry.vpn, entry.ppn, entry.spill_budget, entry.owner_gpu)


def packed_tuple(key, value):
    if value is None:
        return None
    pid, vpn = unpack_key(key)
    return (pid, vpn, value_ppn(value), value_budget(value), value_owner(value))


@pytest.mark.parametrize("num_entries,associativity", [(8, 2), (8, 8), (6, 3)])
@given(ops=ops_st)
@settings(max_examples=50, deadline=None)
def test_packed_tlb_matches_reference(num_entries, associativity, ops):
    ref = SetAssociativeTLB(num_entries, associativity)
    packed = PackedTLB(num_entries, associativity)
    for i, (op, pid, vpn) in enumerate(ops):
        key = pack_key(pid, vpn)
        if op == "insert":
            # Vary payload per step so refreshed duplicates are visible.
            ppn = i + 1  # PPN 0 is reserved in the packed encoding
            budget = i % 3
            owner = (i % 4) - 1
            victim_ref = ref.insert(TLBEntry(pid, vpn, ppn, budget, owner))
            victim_packed = packed.insert(
                key, vpn, pack_value(ppn, budget, owner)
            )
            if victim_ref is None:
                assert victim_packed is None
            else:
                assert packed_tuple(*victim_packed) == entry_tuple(victim_ref)
        elif op == "lookup":
            assert packed_tuple(key, packed.lookup(key, vpn)) == entry_tuple(
                ref.lookup(pid, vpn)
            )
        elif op == "peek":
            assert packed_tuple(key, packed.peek(key, vpn)) == entry_tuple(
                ref.peek(pid, vpn)
            )
        elif op == "touch":
            assert packed.touch(key, vpn) == ref.touch(pid, vpn)
        else:
            removed_ref = ref.remove(pid, vpn)
            removed_packed = packed.remove(key, vpn)
            if removed_ref is None:
                assert removed_packed is None
            else:
                assert packed_tuple(key, removed_packed) == entry_tuple(removed_ref)
        assert len(packed) == len(ref)
    # Full-state sweep: same residency over the whole key domain.
    for pid in (1, 2):
        for vpn in range(21):
            key = pack_key(pid, vpn)
            assert packed.has(key, vpn) == (ref.peek(pid, vpn) is not None)
            assert ((key, vpn) in packed) == (ref.peek(pid, vpn) is not None)


class TestProbeTags:
    """``probe_tags`` is the vectorized backend's chunk primitive: one
    broadcast compare must equal per-key membership exactly."""

    @given(
        tags=st.lists(st.integers(0, 1 << 50), max_size=16),
        keys=st.lists(st.integers(0, 1 << 50), min_size=1, max_size=64),
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_scalar_membership(self, tags, keys):
        tag_arr = np.array(tags, dtype=np.int64)
        key_arr = np.array(keys, dtype=np.int64)
        mask = probe_tags(tag_arr, key_arr)
        assert mask.dtype == np.bool_
        assert mask.tolist() == [k in set(tags) for k in keys]

    def test_empty_tags_all_miss(self):
        keys = np.array([1, 2, 3], dtype=np.int64)
        assert probe_tags(np.array([], dtype=np.int64), keys).tolist() == [
            False, False, False,
        ]


@given(ops=ops_st)
@settings(max_examples=25, deadline=None)
def test_infinite_packed_tlb_matches_reference(ops):
    ref = InfiniteTLB()
    packed = InfinitePackedTLB()
    for i, (op, pid, vpn) in enumerate(ops):
        key = pack_key(pid, vpn)
        if op == "insert":
            assert ref.insert(TLBEntry(pid, vpn, i + 1)) is None
            assert packed.insert(key, vpn, pack_value(i + 1, 1, -1)) is None
        elif op == "remove":
            removed_ref = ref.remove(pid, vpn)
            removed_packed = packed.remove(key, vpn)
            assert (removed_packed is None) == (removed_ref is None)
        else:
            assert packed.has(key, vpn) == (ref.peek(pid, vpn) is not None)
        assert len(packed) == len(ref)
