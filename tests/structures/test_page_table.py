"""Unit tests for the radix page tables."""

import pytest

from repro.structures.page_table import PageTable, PageTableManager


class TestPageTable:
    def test_map_translate(self):
        table = PageTable()
        table.map(0x1234, 99)
        assert table.translate(0x1234) == 99
        assert table.translate(0x1235) is None

    def test_walk_full_depth_on_hit(self):
        table = PageTable(levels=4)
        table.map(7, 1)
        result = table.walk(7)
        assert result.hit
        assert result.levels_touched == 4
        assert not result.faulted

    def test_walk_fault_reports_partial_depth(self):
        table = PageTable(levels=4, bits_per_level=9)
        table.map(0, 1)
        # A vpn differing at the top level faults at level 1.
        far_vpn = 1 << (3 * 9)
        result = table.walk(far_vpn)
        assert result.faulted
        assert result.levels_touched == 1

    def test_walk_fault_at_leaf(self):
        table = PageTable(levels=4, bits_per_level=9)
        table.map(0, 1)
        result = table.walk(1)  # same intermediate path, missing leaf
        assert result.faulted
        assert result.levels_touched == 4

    def test_unmap(self):
        table = PageTable()
        table.map(5, 1)
        assert table.unmap(5) is True
        assert table.translate(5) is None
        assert table.unmap(5) is False
        assert table.mapped_pages == 0

    def test_remap_does_not_double_count(self):
        table = PageTable()
        table.map(5, 1)
        table.map(5, 2)
        assert table.mapped_pages == 1
        assert table.translate(5) == 2

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            PageTable(levels=0)
        with pytest.raises(ValueError):
            PageTable(bits_per_level=0)

    def test_distinct_vpns_distinct_frames(self):
        table = PageTable(levels=2, bits_per_level=4)
        for vpn in range(256):
            table.map(vpn, vpn + 1)
        assert table.mapped_pages == 256
        assert all(table.translate(v) == v + 1 for v in range(256))


class TestPageTableManager:
    def test_per_pid_isolation(self):
        manager = PageTableManager()
        ppn_a = manager.map_page(1, 100)
        ppn_b = manager.map_page(2, 100)
        assert ppn_a != ppn_b
        assert manager.walk(1, 100).ppn == ppn_a
        assert manager.walk(2, 100).ppn == ppn_b

    def test_map_is_idempotent(self):
        manager = PageTableManager()
        first = manager.map_page(1, 5)
        second = manager.map_page(1, 5)
        assert first == second

    def test_unknown_pid_faults_at_first_level(self):
        manager = PageTableManager()
        result = manager.walk(42, 0)
        assert result.faulted
        assert result.levels_touched == 1

    def test_prefault(self):
        manager = PageTableManager()
        created = manager.prefault(1, range(100))
        assert created == 100
        assert manager.prefault(1, range(100)) == 0
        assert manager.total_mapped_pages == 100

    def test_frames_never_zero(self):
        manager = PageTableManager()
        assert manager.map_page(1, 0) >= 1

    def test_remove_process(self):
        manager = PageTableManager()
        manager.map_page(1, 5)
        assert manager.remove_process(1) is True
        assert manager.walk(1, 5).faulted
        assert manager.remove_process(1) is False
