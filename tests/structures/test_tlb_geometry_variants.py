"""Parametrized geometry tests across every TLB configuration the paper
uses (L1 16/16, L2 512/16, IOMMU 4096/64 and the 2048-entry variant)."""

import pytest

from repro.structures.tlb import SetAssociativeTLB, TLBEntry

GEOMETRIES = [
    (16, 16),     # L1 TLB: fully associative
    (512, 16),    # L2 TLB
    (4096, 64),   # IOMMU TLB
    (2048, 64),   # Section 5.3's smaller IOMMU TLB
]


@pytest.mark.parametrize("entries,ways", GEOMETRIES)
class TestGeometryVariants:
    def test_fills_to_exact_capacity(self, entries, ways):
        tlb = SetAssociativeTLB(entries, ways)
        sets = entries // ways
        # One entry per way per set: vpn = set + k*sets lands in `set`.
        for way in range(ways):
            for index in range(sets):
                assert tlb.insert(TLBEntry(1, index + way * sets, 0)) is None
        assert len(tlb) == entries
        assert tlb.occupancy() == 1.0

    def test_next_insert_evicts_exactly_one(self, entries, ways):
        tlb = SetAssociativeTLB(entries, ways)
        sets = entries // ways
        for way in range(ways):
            for index in range(sets):
                tlb.insert(TLBEntry(1, index + way * sets, 0))
        victim = tlb.insert(TLBEntry(1, entries, 0))
        assert victim is not None
        assert len(tlb) == entries

    def test_reach_equals_entries_for_sequential_sweep(self, entries, ways):
        """A sweep of exactly `entries` sequential pages fits (sequential
        VPNs spread uniformly over the sets)."""
        tlb = SetAssociativeTLB(entries, ways)
        for vpn in range(entries):
            tlb.insert(TLBEntry(1, vpn, 0))
        assert len(tlb) == entries
        assert all(tlb.contains(1, vpn) for vpn in range(entries))

    def test_cyclic_sweep_beyond_capacity_misses_under_lru(self, entries, ways):
        """The LRU pathology the paper's workloads exercise: a cyclic sweep
        of capacity+set-count pages re-misses every time around."""
        tlb = SetAssociativeTLB(entries, ways)
        sets = entries // ways
        sweep = entries + sets  # one extra page per set
        for _ in range(2):
            for vpn in range(sweep):
                if tlb.lookup(1, vpn) is None:
                    tlb.insert(TLBEntry(1, vpn, 0))
        # Second pass hit nothing: every set cycles ways+1 > ways pages.
        assert tlb.stats.hits == 0
        assert tlb.stats.misses == 2 * sweep
