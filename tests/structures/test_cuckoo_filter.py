"""Unit tests for the cuckoo filter backing the Local TLB Tracker."""

import pytest

from repro.structures.cuckoo_filter import CuckooFilter


class TestBasics:
    def test_insert_then_contains(self):
        filt = CuckooFilter(num_entries=64)
        filt.insert(1, 42)
        assert filt.contains(1, 42)

    def test_absent_key_usually_not_contained(self):
        filt = CuckooFilter(num_entries=1024, fingerprint_bits=16)
        for vpn in range(100):
            filt.insert(1, vpn)
        false_positives = sum(filt.contains(1, vpn) for vpn in range(10_000, 10_200))
        # With 16-bit fingerprints at low load, aliasing is very unlikely.
        assert false_positives <= 2

    def test_delete_removes(self):
        filt = CuckooFilter(num_entries=64)
        filt.insert(1, 42)
        assert filt.delete(1, 42) is True
        assert not filt.contains(1, 42)

    def test_delete_missing_returns_false(self):
        filt = CuckooFilter(num_entries=64)
        assert filt.delete(1, 42) is False
        assert filt.stats.failed_deletions == 1

    def test_duplicate_inserts_hold_multiple_copies(self):
        filt = CuckooFilter(num_entries=64)
        filt.insert(1, 42)
        filt.insert(1, 42)
        assert filt.delete(1, 42)
        # One copy remains after a single delete.
        assert filt.contains(1, 42)

    def test_clear(self):
        filt = CuckooFilter(num_entries=64)
        for vpn in range(20):
            filt.insert(1, vpn)
        filt.clear()
        assert len(filt) == 0


class TestGeometry:
    def test_entries_must_be_bucket_multiple(self):
        with pytest.raises(ValueError):
            CuckooFilter(num_entries=10, bucket_size=4)

    def test_fingerprint_bits_range(self):
        with pytest.raises(ValueError):
            CuckooFilter(num_entries=64, fingerprint_bits=1)

    def test_capacity_and_size(self):
        filt = CuckooFilter(num_entries=512, fingerprint_bits=6)
        assert filt.capacity == 512
        assert filt.size_bytes() == pytest.approx(512 * 6 / 8)


class TestLoadBehaviour:
    def test_handles_full_load_with_bounded_loss(self):
        """Inserting exactly capacity keys must mostly succeed; overflow
        displaces fingerprints (tolerated false negatives) rather than
        failing hard."""
        filt = CuckooFilter(num_entries=256, max_kicks=128, seed=3)
        for vpn in range(256):
            filt.insert(1, vpn)
        resident = sum(filt.contains(1, vpn) for vpn in range(256))
        # Most keys must still test positive even at 100% nominal load.
        assert resident >= 0.85 * 256
        assert len(filt) + filt.stats.displaced == 256

    def test_determinism_under_seed(self):
        def run(seed):
            filt = CuckooFilter(num_entries=128, seed=seed)
            for vpn in range(200):
                filt.insert(2, vpn)
            return [filt.contains(2, vpn) for vpn in range(200)]

        assert run(9) == run(9)

    def test_false_positive_rate_is_moderate(self):
        """At the paper's operating point (6-bit fingerprints, high load)
        the per-filter false-positive probability is in the tens of
        percent range at most — far from degenerate."""
        filt = CuckooFilter(num_entries=512, fingerprint_bits=6, seed=1)
        for vpn in range(480):
            filt.insert(1, vpn)
        probes = 2000
        fp = sum(filt.contains(1, vpn) for vpn in range(100_000, 100_000 + probes))
        rate = fp / probes
        assert 0.0 < rate < 0.35

    def test_load_factor(self):
        filt = CuckooFilter(num_entries=64)
        for vpn in range(16):
            filt.insert(1, vpn)
        assert filt.load_factor() == pytest.approx(0.25)
