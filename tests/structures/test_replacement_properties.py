"""Property-style tests for the replacement policies.

The TLB relies on two contracts the policies must uphold:

* ``select_victim(peek=True)`` is a pure preview — it must not perturb
  recency order or (for Random) advance RNG state, because
  ``lru_victim``/spill-preview paths call it without committing to an
  eviction;
* LRU and FIFO are indistinguishable on a *cold* set (no re-accesses):
  both evict in insertion order.
"""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structures.replacement import make_policy

POLICY_NAMES = ("lru", "fifo", "random")

keys_st = st.lists(st.integers(0, 50), min_size=1, max_size=40, unique=True)
accesses_st = st.lists(st.integers(0, 50), max_size=60)


def _filled(keys) -> OrderedDict:
    return OrderedDict((key, f"entry-{key}") for key in keys)


class TestPeekIsPure:
    @given(keys=keys_st, accesses=accesses_st)
    @settings(max_examples=60, deadline=None)
    def test_peek_never_mutates_recency_order(self, keys, accesses):
        for name in POLICY_NAMES:
            policy = make_policy(name, seed=7)
            tlb_set = _filled(keys)
            for key in accesses:
                if key in tlb_set:
                    policy.on_access(tlb_set, key)
            order_before = list(tlb_set)
            first = policy.select_victim(tlb_set, peek=True)
            assert list(tlb_set) == order_before, name
            # Repeated peeks are stable: no hidden state advanced.
            for _ in range(3):
                assert policy.select_victim(tlb_set, peek=True) == first, name
            assert list(tlb_set) == order_before, name

    @given(keys=keys_st)
    @settings(max_examples=30, deadline=None)
    def test_random_peek_does_not_consume_rng_state(self, keys):
        committed = make_policy("random", seed=123)
        peeked = make_policy("random", seed=123)
        tlb_set = _filled(keys)
        # Interleaving peeks must not change the committed-victim sequence.
        for _ in range(5):
            peeked.select_victim(tlb_set, peek=True)
        for _ in range(3):
            assert (
                committed.select_victim(tlb_set)
                == peeked.select_victim(tlb_set)
            )


class TestColdSetEquivalence:
    @given(keys=keys_st)
    @settings(max_examples=60, deadline=None)
    def test_lru_and_fifo_agree_with_no_reaccesses(self, keys):
        lru, fifo = make_policy("lru"), make_policy("fifo")
        lru_set, fifo_set = _filled(keys), _filled(keys)
        for policy, tlb_set in ((lru, lru_set), (fifo, fifo_set)):
            policy.on_insert(tlb_set, keys[-1])
        assert lru.select_victim(lru_set, peek=True) == fifo.select_victim(
            fifo_set, peek=True
        )
        # Both evict the oldest insertion.
        assert lru.select_victim(lru_set) == keys[0]
        assert fifo.select_victim(fifo_set) == keys[0]

    @given(keys=keys_st, accesses=accesses_st)
    @settings(max_examples=60, deadline=None)
    def test_lru_victim_matches_reference_model(self, keys, accesses):
        policy = make_policy("lru")
        tlb_set = _filled(keys)
        reference = list(keys)  # least- to most-recently used
        for key in accesses:
            if key in tlb_set:
                policy.on_access(tlb_set, key)
                reference.remove(key)
                reference.append(key)
        assert policy.select_victim(tlb_set, peek=True) == reference[0]

    @given(keys=keys_st, accesses=accesses_st)
    @settings(max_examples=60, deadline=None)
    def test_fifo_ignores_accesses(self, keys, accesses):
        policy = make_policy("fifo")
        tlb_set = _filled(keys)
        for key in accesses:
            if key in tlb_set:
                policy.on_access(tlb_set, key)
        # Hits never refresh position: the victim is always the first in.
        assert policy.select_victim(tlb_set, peek=True) == keys[0]
