"""Every staticcheck rule against its known-bad/known-good fixture.

Each fixture file marks the lines that must be reported with a trailing
``# fires`` comment; every unmarked line must stay silent.  The checks
run with the *full* rule set, so a fixture that accidentally trips a
second rule fails loudly instead of hiding cross-fire.
"""

import re
from pathlib import Path

import pytest

from repro.staticcheck import all_rules, check_source, get_rule

FIXTURES = Path(__file__).parent / "fixtures"

#: rule id -> the fixture exercising it.
RULE_FIXTURES = {
    "C1": "c1_blocking_in_async.py",
    "C2": "c2_await_under_sync_lock.py",
    "C3": "c3_unguarded_acquire.py",
    "C4": "c4_unlocked_shared_state.py",
    "D10": "d10_order_taint.py",
    "D1": "d1_unordered_iteration.py",
    "D2": "d2_wall_clock.py",
    "D3": "d3_schedule_in_past.py",
    "D4": "d4_pending_serial.py",
    "D5": "d5_float_cycle.py",
    "D6": "d6_config_mutation.py",
    "D7": "d7_stats_ownership.py",
    "D8": "d8_telemetry_guard.py",
    "D9": "d9_unseeded_rng.py",
    "G1": "g1_bare_except.py",
    "G2": "g2_mutable_default.py",
}


_MARKER = re.compile(r"#\s*fires\s*$")


def marked_lines(source: str) -> list[int]:
    return [
        lineno
        for lineno, line in enumerate(source.splitlines(), start=1)
        if _MARKER.search(line)
    ]


@pytest.mark.parametrize("rule_id,filename", sorted(RULE_FIXTURES.items()))
def test_rule_fires_exactly_on_marked_lines(rule_id, filename):
    source = (FIXTURES / filename).read_text()
    expected = marked_lines(source)
    assert expected, f"fixture {filename} has no `# fires` markers"

    violations = check_source(source, filename)
    assert sorted(v.line for v in violations) == expected
    # No cross-fire: the fixture trips its own rule and nothing else.
    assert {v.rule_id for v in violations} == {rule_id}
    for violation in violations:
        assert violation.path == filename
        assert violation.rule_name == get_rule(rule_id).name
        assert violation.message


@pytest.mark.parametrize("rule_id,filename", sorted(RULE_FIXTURES.items()))
def test_rule_fires_when_run_alone(rule_id, filename):
    source = (FIXTURES / filename).read_text()
    violations = check_source(source, filename, rules=[get_rule(rule_id)])
    assert sorted(v.line for v in violations) == marked_lines(source)


def test_every_registered_rule_has_a_fixture():
    assert {rule.id for rule in all_rules()} == set(RULE_FIXTURES)


def test_registry_is_sorted_and_described():
    rules = all_rules()
    assert [r.id for r in rules] == sorted(r.id for r in rules)
    assert len({r.id for r in rules}) == len(rules)
    for rule in rules:
        assert rule.name and rule.description
        assert get_rule(rule.id) is rule
        assert get_rule(rule.id.lower()) is rule


def test_get_rule_unknown_raises():
    with pytest.raises(KeyError):
        get_rule("D99")


class TestD9BackendScope:
    """D9's stricter backend clause: inside ``repro/sim/backends/`` (and
    ``sharding.py``) even a *seeded* numpy generator is flagged — replay
    fidelity requires drawing through the engine's own seeded
    structures, and an identically-seeded numpy generator still yields a
    different draw sequence than CPython's Mersenne Twister."""

    SEEDED_NUMPY = "import numpy as np\nrng = np.random.default_rng(7)\n"
    SEEDED_STDLIB = "import random\nrng = random.Random(7)\n"

    def _check(self, source, path):
        return check_source(source, path, rules=[get_rule("D9")])

    def test_seeded_numpy_generator_fires_in_backend_code(self):
        for path in (
            "src/repro/sim/backends/vectorized.py",
            "src/repro/sim/sharding.py",
        ):
            violations = self._check(self.SEEDED_NUMPY, path)
            assert [v.line for v in violations] == [2], path
            assert "backend" in violations[0].message

    def test_seeded_numpy_generator_is_fine_elsewhere(self):
        assert self._check(self.SEEDED_NUMPY, "src/repro/workloads/gen.py") == []

    def test_seeded_stdlib_rng_is_fine_in_backend_code(self):
        # The engine's own idiom (random.Random(config.seed)) stays legal.
        assert (
            self._check(self.SEEDED_STDLIB, "src/repro/sim/backends/functional.py")
            == []
        )

    def test_unseeded_stdlib_rng_fires_in_backend_code(self):
        source = "import random\nrng = random.Random()\n"
        violations = self._check(source, "src/repro/sim/backends/functional.py")
        assert [v.line for v in violations] == [2]
