"""Suppression comments: the per-line escape hatch for every rule."""

from repro.staticcheck import check_source
from repro.staticcheck.suppressions import is_suppressed, scan_suppressions

BAD_SET_LOOP = "for k in set(xs):\n    consume(k)\n"


def test_bare_ignore_suppresses_any_rule():
    source = "for k in set(xs):  # staticcheck: ignore\n    consume(k)\n"
    assert check_source(source) == []


def test_scoped_ignore_suppresses_named_rule():
    source = "for k in set(xs):  # staticcheck: ignore[D1]\n    consume(k)\n"
    assert check_source(source) == []


def test_scoped_ignore_leaves_other_rules_firing():
    source = "for k in set(xs):  # staticcheck: ignore[D2]\n    consume(k)\n"
    assert [v.rule_id for v in check_source(source)] == ["D1"]


def test_multi_rule_ignore():
    source = (
        "import time\n"
        "t = time.time()  # staticcheck: ignore[D1, D2]\n"
    )
    assert check_source(source) == []


def test_suppression_only_affects_its_line():
    source = (
        "for k in set(xs):  # staticcheck: ignore[D1]\n"
        "    consume(k)\n"
        "for k in set(ys):\n"
        "    consume(k)\n"
    )
    violations = check_source(source)
    assert [(v.rule_id, v.line) for v in violations] == [("D1", 3)]


def test_unsuppressed_baseline_fires():
    assert [v.rule_id for v in check_source(BAD_SET_LOOP)] == ["D1"]


def test_scan_suppressions_map():
    source = (
        "x = 1  # staticcheck: ignore[D1,D2]\n"
        "y = 2  # staticcheck: ignore\n"
        "z = 3  # a normal comment\n"
    )
    suppressions = scan_suppressions(source)
    assert set(suppressions) == {1, 2}
    assert is_suppressed(suppressions, 1, "D1")
    assert is_suppressed(suppressions, 1, "D2")
    assert not is_suppressed(suppressions, 1, "G1")
    assert is_suppressed(suppressions, 2, "G1")
    assert not is_suppressed(suppressions, 3, "D1")
