"""Runner behaviour: file expansion, broken files, report rendering."""

import json

import pytest

from repro.staticcheck import (
    Violation,
    check_paths,
    check_source,
    render_json,
    render_text,
)
from repro.staticcheck.runner import iter_python_files, render_json_text


class TestCheckSource:
    def test_syntax_error_yields_e0(self):
        violations = check_source("def broken(:\n    pass\n", "broken.py")
        assert len(violations) == 1
        assert violations[0].rule_id == "E0"
        assert violations[0].rule_name == "syntax-error"
        assert violations[0].line == 1
        assert "does not parse" in violations[0].message

    def test_violations_sorted_by_position(self):
        source = (
            "import time\n"
            "def f(xs=[]):\n"
            "    t = time.time()\n"
            "    for k in set(xs):\n"
            "        consume(k)\n"
        )
        violations = check_source(source)
        assert [v.sort_key() for v in violations] == sorted(
            v.sort_key() for v in violations
        )
        assert [v.rule_id for v in violations] == ["G2", "D2", "D1"]

    def test_render_includes_position_and_rule(self):
        violation = check_source("try:\n    x()\nexcept:\n    pass\n", "f.py")[0]
        rendered = violation.render()
        assert rendered.startswith("f.py:3:")
        assert "G1" in rendered and "bare-except" in rendered


class TestIterPythonFiles:
    def test_expands_directories_sorted(self, tmp_path):
        (tmp_path / "b.py").write_text("x = 1\n")
        (tmp_path / "a.py").write_text("x = 1\n")
        sub = tmp_path / "sub"
        sub.mkdir()
        (sub / "c.py").write_text("x = 1\n")
        (tmp_path / "notes.txt").write_text("not python\n")
        files = iter_python_files([tmp_path])
        assert [f.name for f in files] == ["a.py", "b.py", "c.py"]

    def test_skips_cache_directories(self, tmp_path):
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "junk.py").write_text("x = 1\n")
        (tmp_path / "real.py").write_text("x = 1\n")
        assert [f.name for f in iter_python_files([tmp_path])] == ["real.py"]

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            iter_python_files([tmp_path / "nope"])

    def test_explicit_file_and_duplicate_collapse(self, tmp_path):
        path = tmp_path / "one.py"
        path.write_text("x = 1\n")
        assert iter_python_files([path, path, tmp_path]) == [path]


class TestRendering:
    def test_text_clean_summary(self):
        assert render_text([], 3) == "3 file(s) checked: clean"

    def test_text_breakdown(self, tmp_path):
        path = tmp_path / "bad.py"
        path.write_text("import time\nt = time.time()\n")
        violations = check_paths([path])
        text = render_text(violations, 1)
        assert "1 violation(s) in 1 file(s)" in text
        assert "D2: 1" in text

    def test_json_schema(self, tmp_path):
        path = tmp_path / "bad.py"
        path.write_text("import time\nt = time.time()\n")
        violations = check_paths([path])
        report = render_json(violations, 1)
        assert report["schema"] == 2
        assert report["files_checked"] == 1
        assert report["total_violations"] == 1
        assert report["by_rule"]["D2"] == 1
        assert report["by_rule"]["D1"] == 0
        assert {r["id"] for r in report["rules"]} >= {"C1", "D1", "D10", "G2"}
        kinds = {r["id"]: r["kind"] for r in report["rules"]}
        assert kinds["D2"] == "file"
        assert kinds["C1"] == "project"
        assert report["baseline"] == {"suppressed": 0, "stale_entries": 0}
        entry = report["violations"][0]
        assert entry["rule"] == "D2"
        assert entry["line"] == 2
        assert entry["call_path"] == []
        assert entry["effect"] is None

    def test_json_text_round_trips(self):
        parsed = json.loads(render_json_text([], 0))
        assert parsed["total_violations"] == 0

    def test_schema2_violation_round_trip(self):
        """Every violation in a schema-2 report — including the
        interprocedural metadata — survives to_dict/from_dict."""
        source = (
            "import time\n"
            "def helper():\n"
            "    time.sleep(1)\n"
            "async def handler():\n"
            "    return helper()\n"
        )
        violations = check_source(source, "mod.py")
        assert any(v.rule_id == "C1" for v in violations)
        report = json.loads(render_json_text(violations, 1))
        assert report["schema"] == 2
        restored = [Violation.from_dict(entry) for entry in report["violations"]]
        assert restored == violations
        c1 = next(v for v in restored if v.rule_id == "C1")
        assert c1.call_path == ("handler", "helper")
        assert c1.effect == "time.sleep"
