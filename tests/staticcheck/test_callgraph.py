"""The project call graph and its degradation contract.

Three properties carry the C-rule family:

* **stability** — findings are a function of the code, not of the order
  definitions appear in the file (hypothesis shuffles the defs);
* **soundness polarity** — an edge the symbol table cannot resolve
  (dynamic dispatch, a callable parameter, getattr) degrades to
  *unknown* and loses findings; it never invents a C1;
* **cycles** — recursion and mutual recursion terminate and still
  propagate effects.
"""

import ast

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.staticcheck import check_source, check_units, get_rule
from repro.staticcheck.callgraph import CallGraph
from repro.staticcheck.project import Project
from repro.staticcheck.registry import all_rules


def build(source, path="mod.py"):
    tree = ast.parse(source)
    from repro.staticcheck.context import FileContext
    from repro.staticcheck.project import AnalysisUnit

    unit = AnalysisUnit(
        path=path, source=source, tree=tree,
        ctx=FileContext(path, source, tree),
    )
    project = Project([unit])
    return project, CallGraph(project)


# Function bodies that can be emitted in any textual order; the C1
# verdicts must not change.  `helper` blocks; `bad` reaches it; `good`
# hops; `deep` reaches it through `mid`.
_DEFS = {
    "helper": "def helper(p):\n    return open(p).read()\n",
    "mid": "def mid(p):\n    return helper(p)\n",
    "bad": "async def bad(p):\n    return helper(p)\n",
    "deep": "async def deep(p):\n    return mid(p)\n",
    "good": (
        "async def good(p):\n"
        "    return await asyncio.to_thread(helper, p)\n"
    ),
}


@settings(max_examples=25, deadline=None)
@given(order=st.permutations(sorted(_DEFS)))
def test_findings_stable_under_def_reordering(order):
    source = "import asyncio\n" + "\n".join(_DEFS[name] for name in order)
    violations = check_source(source, "shuffled.py", rules=[get_rule("C1")])
    fired_in = {v.message.split("(")[0].split()[1] for v in violations}
    assert fired_in == {"bad", "deep"}
    assert all(v.rule_id == "C1" for v in violations)


@settings(max_examples=20, deadline=None)
@given(order=st.permutations(sorted(_DEFS)))
def test_classification_stable_under_def_reordering(order):
    source = "import asyncio\n" + "\n".join(_DEFS[name] for name in order)
    _project, graph = build(source, path="shuffled.py")
    assert graph.classification("shuffled.bad") == "async"
    assert graph.classification("shuffled.helper") == "thread-entry"
    assert graph.classification("shuffled.mid") == "loop-only"


def test_classification_qualnames_use_module_name():
    # The fixture above relies on path->module naming; pin it.
    _project, graph = build("def f():\n    pass\n", path="shuffled.py")
    assert graph.classification("shuffled.f") == "sync"


class TestDegradesToUnknown:
    """Hostile shapes lose findings; they never invent a C1."""

    def _c1(self, source):
        return check_source(source, "mod.py", rules=[get_rule("C1")])

    def test_callable_parameter_is_silent(self):
        source = (
            "async def handler(loader, p):\n"
            "    return loader(p)\n"
        )
        assert self._c1(source) == []

    def test_getattr_dispatch_is_silent(self):
        source = (
            "import time\n"
            "def blocks():\n"
            "    time.sleep(1)\n"
            "async def handler(obj):\n"
            "    return getattr(obj, 'blocks')()\n"
        )
        assert self._c1(source) == []

    def test_dict_dispatch_is_silent(self):
        source = (
            "import time\n"
            "def blocks():\n"
            "    time.sleep(1)\n"
            "TABLE = {'x': blocks}\n"
            "async def handler(key):\n"
            "    return TABLE[key]()\n"
        )
        assert self._c1(source) == []

    def test_unresolved_attribute_receiver_is_silent(self):
        source = (
            "async def handler(self):\n"
            "    return self.mystery.load()\n"
        )
        assert self._c1(source) == []

    def test_resolved_equivalent_fires(self):
        # The control: the same effect, reachable through a *resolved*
        # edge, does fire — silence above is degradation, not blindness.
        source = (
            "import time\n"
            "def blocks():\n"
            "    time.sleep(1)\n"
            "async def handler():\n"
            "    return blocks()\n"
        )
        assert len(self._c1(source)) == 1


class TestCycles:
    def test_direct_recursion_terminates(self):
        source = (
            "def rec(n):\n"
            "    open('x')\n"
            "    return rec(n - 1)\n"
            "async def handler():\n"
            "    return rec(3)\n"
        )
        violations = check_source(source, "mod.py", rules=[get_rule("C1")])
        assert [v.rule_id for v in violations] == ["C1"]

    def test_mutual_recursion_terminates_and_propagates(self):
        source = (
            "def ping(n):\n"
            "    return pong(n)\n"
            "def pong(n):\n"
            "    open('x')\n"
            "    return ping(n - 1)\n"
            "async def handler():\n"
            "    return ping(3)\n"
        )
        violations = check_source(source, "mod.py", rules=[get_rule("C1")])
        assert len(violations) == 1
        assert violations[0].call_path == ("handler", "ping", "pong")
        assert violations[0].effect == "open()"

    def test_effect_summary_on_cycle(self):
        _project, graph = build(
            "def ping(n):\n"
            "    return pong(n)\n"
            "def pong(n):\n"
            "    open('x')\n"
            "    return ping(n - 1)\n"
        )
        assert graph.summary("mod.ping")["blocks"] == ["open()"]
        assert graph.summary("mod.pong")["blocks"] == ["open()"]


class TestCrossModule:
    def test_imported_call_resolves_across_units(self):
        helper = (
            "def load(p):\n"
            "    return open(p).read()\n"
        )
        app = (
            "from repro.pkg.helper import load\n"
            "async def handler(p):\n"
            "    return load(p)\n"
        )
        violations = check_units([
            ("src/repro/pkg/app.py", app),
            ("src/repro/pkg/helper.py", helper),
        ], rules=[get_rule("C1")])
        assert [v.path for v in violations] == ["src/repro/pkg/app.py"]
        assert violations[0].call_path == ("handler", "load")

    def test_report_lands_in_async_callers_file_and_suppresses_there(self):
        helper = "def load(p):\n    return open(p).read()\n"
        app = (
            "from repro.pkg.helper import load\n"
            "async def handler(p):\n"
            "    return load(p)  # staticcheck: ignore[C1] -- startup only\n"
        )
        violations = check_units([
            ("src/repro/pkg/app.py", app),
            ("src/repro/pkg/helper.py", helper),
        ], rules=[get_rule("C1")])
        assert violations == []


def test_thread_entry_effects_do_not_fire_but_are_summarised():
    source = (
        "import asyncio\n"
        "def writer(p):\n"
        "    open(p)\n"
        "async def handler(p):\n"
        "    await asyncio.to_thread(writer, p)\n"
    )
    project, graph = build(source)
    assert check_source(source, "mod.py", rules=[get_rule("C1")]) == []
    assert graph.classification("mod.writer") == "thread-entry"
    assert graph.summary("mod.writer")["blocks"] == ["open()"]


def test_all_rules_include_project_rules():
    ids = {rule.id for rule in all_rules()}
    assert {"C1", "C2", "C3", "C4", "D10"} <= ids
