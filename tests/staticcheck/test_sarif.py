"""SARIF emission: structure, rule metadata, and schema conformance.

The container has no network, so instead of fetching the official OASIS
schema we validate against an inline structural subset of SARIF 2.1.0 —
the required spine (version/runs/tool.driver/results with physical
locations) that GitHub code scanning actually ingests.
"""

import json

import jsonschema

from repro.staticcheck import all_rules, check_units, get_rule, render_sarif
from repro.staticcheck.sarif import SARIF_VERSION, render_sarif_text

#: Structural subset of sarif-schema-2.1.0.json: everything the upload
#: endpoint requires, spelled strictly enough to catch shape regressions.
SARIF_SUBSET_SCHEMA = {
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "$schema": {"type": "string"},
        "version": {"const": "2.1.0"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool", "results"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                            "properties": {
                                                "id": {"type": "string"},
                                                "shortDescription": {
                                                    "type": "object",
                                                    "required": ["text"],
                                                },
                                            },
                                        },
                                    },
                                },
                            },
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["ruleId", "message", "locations"],
                            "properties": {
                                "ruleId": {"type": "string"},
                                "level": {
                                    "enum": ["none", "note", "warning", "error"],
                                },
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                    "properties": {"text": {"type": "string"}},
                                },
                                "locations": {
                                    "type": "array",
                                    "minItems": 1,
                                    "items": {
                                        "type": "object",
                                        "required": ["physicalLocation"],
                                        "properties": {
                                            "physicalLocation": {
                                                "type": "object",
                                                "required": ["artifactLocation"],
                                                "properties": {
                                                    "artifactLocation": {
                                                        "type": "object",
                                                        "required": ["uri"],
                                                    },
                                                    "region": {
                                                        "type": "object",
                                                        "properties": {
                                                            "startLine": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            },
                                                            "startColumn": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            },
                                                        },
                                                    },
                                                },
                                            },
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}

ASYNC_BAD = (
    "import time\n"
    "def helper():\n"
    "    time.sleep(1)\n"
    "async def handler():\n"
    "    return helper()\n"
)


def _report(source=ASYNC_BAD, path="src/mod.py"):
    violations = check_units([(path, source)])
    return render_sarif(violations, all_rules()), violations


def test_document_validates_against_sarif_subset():
    document, violations = _report()
    assert violations  # the fixture really produced findings
    jsonschema.validate(document, SARIF_SUBSET_SCHEMA)


def test_empty_run_still_validates():
    document, _ = _report(source="x = 1\n")
    jsonschema.validate(document, SARIF_SUBSET_SCHEMA)
    assert document["runs"][0]["results"] == []


def test_version_and_driver_rules_are_complete():
    document, _ = _report()
    assert document["version"] == SARIF_VERSION == "2.1.0"
    driver = document["runs"][0]["tool"]["driver"]
    assert {r["id"] for r in driver["rules"]} == {
        rule.id for rule in all_rules()
    }


def test_result_carries_location_and_interprocedural_evidence():
    document, violations = _report()
    result = document["runs"][0]["results"][0]
    assert result["ruleId"] == "C1"
    assert result["level"] == "error"
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == "src/mod.py"
    assert location["artifactLocation"]["uriBaseId"] == "%SRCROOT%"
    # ast cols are 0-based; SARIF columns are 1-based.
    assert location["region"]["startColumn"] == violations[0].col + 1
    assert result["properties"]["callPath"] == ["handler", "helper"]
    assert result["properties"]["effect"] == "time.sleep"


def test_render_text_is_json_with_trailing_newline():
    violations = check_units([("src/mod.py", ASYNC_BAD)])
    text = render_sarif_text(violations, [get_rule("C1")])
    assert text.endswith("\n")
    assert json.loads(text)["version"] == "2.1.0"
