"""The repository's own source tree must lint clean.

This is the gate the CI lint job enforces; keeping it in the test suite
means a violation fails `pytest` locally before it ever reaches CI.
"""

from pathlib import Path

from repro.staticcheck import check_paths
from repro.staticcheck.runner import iter_python_files

SRC = Path(__file__).resolve().parents[2] / "src"


def test_src_tree_is_clean():
    violations = check_paths([SRC])
    assert violations == [], "\n".join(v.render() for v in violations)


def test_src_tree_is_nonempty():
    # Guard the guard: an empty expansion would make the clean check vacuous.
    assert len(iter_python_files([SRC])) > 50
