"""The repository's own source tree must lint clean.

This is the gate the CI lint job enforces; keeping it in the test suite
means a violation fails `pytest` locally before it ever reaches CI.
The gate covers everything CI lints — ``src/``, ``scripts/`` and
``tests/`` — against the *shipped* baseline, and additionally pins the
baseline itself: empty, and in particular with no C-rule entries under
``src/repro/serve`` (the concurrency rules gate the service layer
strictly, they are not grandfathered).
"""

import json
from pathlib import Path

from repro.staticcheck import check_paths
from repro.staticcheck.baseline import Baseline
from repro.staticcheck.runner import iter_python_files, load_sources

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src"
LINT_PATHS = [SRC, REPO / "scripts", REPO / "tests"]
BASELINE = REPO / "lint-baseline.json"


def test_lint_paths_are_clean_with_shipped_baseline():
    """`repro lint src/ scripts/ tests/ --baseline lint-baseline.json`
    must exit 0 — same analysis, in-process."""
    sources = load_sources(LINT_PATHS)
    violations = check_paths(LINT_PATHS)
    new, _baselined, _stale = Baseline.load(BASELINE).split(
        violations, sources
    )
    assert new == [], "\n".join(v.render() for v in new)


def test_shipped_baseline_has_no_concurrency_debt():
    payload = json.loads(BASELINE.read_text())
    serve_c_entries = [
        entry for entry in payload["entries"]
        if entry["rule"].startswith("C") and "repro/serve" in entry["path"]
    ]
    assert serve_c_entries == []


def test_shipped_baseline_is_empty():
    # Stronger than the serve-only clause above: this PR fixed every
    # finding instead of grandfathering any.  If a future rule lands
    # with accepted debt, relax this to the serve-only assertion.
    assert json.loads(BASELINE.read_text())["entries"] == []


def test_src_tree_is_clean():
    violations = check_paths([SRC])
    assert violations == [], "\n".join(v.render() for v in violations)


def test_src_tree_is_nonempty():
    # Guard the guard: an empty expansion would make the clean check vacuous.
    assert len(iter_python_files([SRC])) > 50
    assert len(iter_python_files(LINT_PATHS)) > 150
