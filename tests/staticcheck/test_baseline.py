"""Baseline semantics: fingerprint drift-tolerance, gating, staleness."""

import json

import pytest

from repro.staticcheck import check_units
from repro.staticcheck.baseline import (
    BASELINE_SCHEMA,
    Baseline,
    violation_fingerprint,
)

BAD = "import time\nt = time.time()\n"


def _violations(source=BAD, path="mod.py"):
    return check_units([(path, source)]), {path: source}


class TestFingerprint:
    def test_line_drift_does_not_change_fingerprint(self):
        violations, sources = _violations()
        original = violation_fingerprint(
            violations[0], sources["mod.py"].splitlines()
        )
        shifted_src = "import time\n# a new comment above\nt = time.time()\n"
        shifted, shifted_sources = _violations(shifted_src)
        assert shifted[0].line == 3  # it really did move
        assert violation_fingerprint(
            shifted[0], shifted_sources["mod.py"].splitlines()
        ) == original

    def test_editing_the_offending_line_changes_fingerprint(self):
        violations, sources = _violations()
        original = violation_fingerprint(
            violations[0], sources["mod.py"].splitlines()
        )
        edited_src = "import time\nt2 = time.time()\n"
        edited, edited_sources = _violations(edited_src)
        assert violation_fingerprint(
            edited[0], edited_sources["mod.py"].splitlines()
        ) != original

    def test_rule_and_path_are_part_of_identity(self):
        violations, sources = _violations()
        lines = sources["mod.py"].splitlines()
        moved, moved_sources = _violations(BAD, path="other.py")
        assert violation_fingerprint(violations[0], lines) != \
            violation_fingerprint(moved[0], moved_sources["other.py"].splitlines())


class TestSplit:
    def test_baselined_findings_are_separated_from_new(self):
        violations, sources = _violations()
        baseline = Baseline.from_violations(violations, sources)
        two = BAD + "u = time.time()\n"
        now, now_sources = _violations(two)
        new, baselined, stale = baseline.split(now, now_sources)
        assert [v.line for v in baselined] == [2]
        assert [v.line for v in new] == [3]
        assert stale == []

    def test_fixed_finding_becomes_stale_entry(self):
        violations, sources = _violations()
        baseline = Baseline.from_violations(violations, sources)
        clean_src = "import time\n"
        now, now_sources = _violations(clean_src)
        new, baselined, stale = baseline.split(now, now_sources)
        assert new == [] and baselined == []
        assert len(stale) == 1
        assert stale[0]["rule"] == "D2"


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        violations, sources = _violations()
        baseline = Baseline.from_violations(violations, sources)
        path = tmp_path / "lint-baseline.json"
        baseline.save(path)
        loaded = Baseline.load(path)
        assert len(loaded) == len(baseline) == 1
        new, baselined, _ = loaded.split(violations, sources)
        assert new == [] and len(baselined) == 1

    def test_saved_payload_is_sorted_and_versioned(self, tmp_path):
        violations, sources = _violations(BAD + "u = time.time()\n")
        path = tmp_path / "b.json"
        Baseline.from_violations(violations, sources).save(path)
        payload = json.loads(path.read_text())
        assert payload["schema"] == BASELINE_SCHEMA
        lines = [entry["line"] for entry in payload["entries"]]
        assert lines == sorted(lines)

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(json.dumps({"schema": 99, "entries": []}))
        with pytest.raises(ValueError, match="unsupported baseline schema"):
            Baseline.load(path)

    def test_load_rejects_non_baseline_payload(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(json.dumps({"violations": []}))
        with pytest.raises(ValueError, match="not a baseline file"):
            Baseline.load(path)

    def test_load_rejects_malformed_entry(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(json.dumps(
            {"schema": BASELINE_SCHEMA, "entries": [{"rule": "D2"}]}
        ))
        with pytest.raises(ValueError, match="malformed baseline entry"):
            Baseline.load(path)
