"""Fixture for D4 (pending-serial-not-threaded).  Never executed."""


class FakeIOMMU:
    def arm(self, queue, pending, timeout):
        queue.schedule_after(timeout, self._walk_timed_out, pending.key)  # fires
        queue.schedule_after(timeout, self._retry_walk)  # fires
        queue.schedule_after(timeout, self._remote_probe, pending.key)  # fires
        queue.schedule_after(timeout, self._walk_timed_out, pending.key, pending.serial)
        queue.schedule_after(timeout, self._retry_walk, pending.serial)
        queue.schedule_after(timeout, self._unrelated_callback, pending.key)

    def _walk_timed_out(self, key, serial):
        queue = self.queue
        queue.schedule_after(1, self._remote_probe, key, serial)

    def _retry_walk(self, serial=None):
        pass

    def _remote_probe(self, key, serial):
        pass

    def _unrelated_callback(self, key):
        pass
