"""Fixture for C1 (blocking-call-in-async).  Never imported or executed.

Lines tagged ``# fires`` must be reported; everything else must not.
The transitive cases matter most: the blocking effect lives in a sync
helper, and the report must land on the *call* inside the async body.
"""
import asyncio
import time


def read_config(path):
    with open(path) as stream:
        return stream.read()


def indirect(path):
    return read_config(path)


async def bad_direct():
    time.sleep(0.1)  # fires


async def bad_helper(path):
    return read_config(path)  # fires


async def bad_deep(path):
    return indirect(path)  # fires


async def good_hop(path):
    return await asyncio.to_thread(read_config, path)


async def good_async_sleep():
    await asyncio.sleep(0.1)


async def good_unresolved(loader, path):
    return loader(path)
