"""Fixture for G1 (bare-except).  Never executed."""


def swallow(queue):
    try:
        queue.pop()
    except:  # fires
        pass
    try:
        queue.pop()
    except ValueError:
        pass
    try:
        queue.pop()
    except (KeyError, IndexError):
        pass
