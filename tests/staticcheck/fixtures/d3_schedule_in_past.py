"""Fixture for D3 (schedule-in-past).  Never executed."""


def rearm(queue, now, callback, delay):
    queue.schedule(-5, callback)  # fires
    queue.schedule_after(-1, callback)  # fires
    queue.schedule_at(now - 10, callback)  # fires
    queue.schedule(now - delay, callback)  # fires
    queue.schedule_after(5, callback)
    queue.schedule(now + 10, callback)
    queue.schedule_at(now, callback)
