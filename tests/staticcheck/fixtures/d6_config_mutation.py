"""Fixture for D6 (config-mutation).  Never executed."""


def tweak(config, run_config, options):
    config.num_gpus = 8  # fires
    run_config.seed += 1  # fires
    options.depth = 3
    derived = config.derive(num_gpus=8)
    local_config = {"num_gpus": 8}
    local_config["seed"] = 1
    return derived, local_config
