"""Fixture for C3 (unguarded-lock-acquire).  Never imported or executed.

Lines tagged ``# fires`` must be reported; everything else must not.
Both guard shapes are sanctioned: acquire *inside* a try with the
release in its finally, and acquire immediately *before* such a try.
"""
import fcntl
import threading

state_lock = threading.Lock()


def bad_acquire(work):
    state_lock.acquire()  # fires
    work()
    state_lock.release()


def good_try_finally(work):
    state_lock.acquire()
    try:
        work()
    finally:
        state_lock.release()


def bad_flock(handle, work):
    fcntl.flock(handle, fcntl.LOCK_EX)  # fires
    work()
    fcntl.flock(handle, fcntl.LOCK_UN)


def good_flock(handle, work):
    fcntl.flock(handle, fcntl.LOCK_SH)
    try:
        work()
    finally:
        fcntl.flock(handle, fcntl.LOCK_UN)


def good_with_block(work):
    with state_lock:
        work()


class GuardingManager:
    """The context-manager protocol itself is exempt: ``__enter__``
    acquires by design; ``__exit__`` releases."""

    def __enter__(self):
        state_lock.acquire()
        return self

    def __exit__(self, *exc):
        state_lock.release()
