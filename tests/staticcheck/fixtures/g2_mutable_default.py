"""Fixture for G2 (mutable-default-argument).  Never executed."""

from collections import Counter


def collect(items=[]):  # fires
    return items


def merge(*, seen=set()):  # fires
    return seen


def tally(counts=Counter()):  # fires
    return counts


def fine(items=None, count=0, name="x"):
    return items or [], count, name
