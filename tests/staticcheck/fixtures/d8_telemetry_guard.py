"""Fixture for D8 (unguarded-telemetry).  Never executed."""


class FakeDevice:
    def finish_unguarded(self, latency):
        hub = self.system.telemetry
        hub.record_latency("walk", latency)  # fires

    def finish_guarded(self, latency):
        hub = self.system.telemetry
        if hub is not None:
            hub.record_latency("walk", latency)

    def finish_guarded_compound(self, latency, measured):
        hub = self.system.telemetry
        if hub is not None and measured:
            hub.record_app_latency("walk", latency)

    def finish_early_return(self, latency):
        hub = self.system.telemetry
        if hub is None:
            return
        hub.record_latency("walk", latency)

    def sample(self):
        self.system.telemetry.maybe_sample()  # fires
