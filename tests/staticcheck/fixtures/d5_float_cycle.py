"""Fixture for D5 (float-cycle-arithmetic).  Never executed."""


def pace(queue, total, count, tick, deadline):
    delay = total / count  # fires
    queue.schedule_after(total / count, tick)  # fires
    arrival_cycle = total / count  # fires
    deadline /= 2  # fires
    cycles = total // count
    queue.schedule_after(round(total / count), tick)
    queue.schedule_after(int(total / count), tick)
    ratio = total / count
    deadline //= 2
    return delay, arrival_cycle, cycles, ratio, deadline
