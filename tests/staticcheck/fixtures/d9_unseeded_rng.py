"""Fixture for D9 (unseeded-rng).  Never executed."""

import random

import numpy as np
from numpy.random import SeedSequence, default_rng


def make_generators(seed):
    os_seeded = random.Random()  # fires
    none_is_not_a_seed = random.Random(None)  # fires
    np_unseeded = np.random.default_rng()  # fires
    seq = SeedSequence()  # fires
    kw_none = default_rng(seed=None)  # fires
    good = random.Random(seed)
    good_np = np.random.default_rng(seed)
    good_kw = default_rng(seed=seed)
    good_seq = SeedSequence(entropy=seed)
    return (os_seeded, none_is_not_a_seed, np_unseeded, seq, kw_none,
            good, good_np, good_kw, good_seq)
