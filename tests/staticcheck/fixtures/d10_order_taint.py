"""Fixture for D10 (interprocedural-order-taint).  Never imported or
executed.

Lines tagged ``# fires`` must be reported; everything else must not.
D1 cannot see any of these: the set never appears at the sink — its
iteration order is laundered through a return value (twice, for the
``page_list`` cases).
"""


def resident_pages(tlb):
    return set(tlb.pages)


def page_list(tlb):
    return list(resident_pages(tlb))


def bad_iterate(tlb, queue):
    for page in resident_pages(tlb):  # fires
        queue.schedule(10, page)


def bad_store(tlb):
    report = {}
    report["pages"] = page_list(tlb)  # fires
    return report


def bad_record(journal, tlb):
    journal.write(page_list(tlb))  # fires


def good_sorted_iterate(tlb, queue):
    for page in sorted(resident_pages(tlb)):
        queue.schedule(10, page)


def good_sorted_store(tlb):
    report = {}
    report["pages"] = sorted(page_list(tlb))
    return report


def good_unordered_ok(tlb):
    membership = resident_pages(tlb)
    return 7 in membership
