"""Fixture for C4 (unlocked-shared-state).  Never imported or executed.

Lines tagged ``# fires`` must be reported; everything else must not.
The report lands on the thread-side write: that's the side that should
marshal onto the loop with call_soon_threadsafe (or both sides lock).
"""
import asyncio
import threading

stats_lock = threading.Lock()


class Daemon:
    def __init__(self):
        self.completed = 0
        self.flushed = 0

    async def tick(self):
        self.completed += 1
        await asyncio.to_thread(self.worker)

    def worker(self):
        self.completed += 1  # fires

    async def guarded_tick(self):
        with stats_lock:
            self.flushed += 1
        await asyncio.to_thread(self.guarded_worker)

    def guarded_worker(self):
        with stats_lock:
            self.flushed += 1
