"""Fixture for D1 (unordered-iteration).  Never imported or executed.

Lines tagged ``# fires`` must be reported; everything else must not.
"""


def schedule_all(queue, pending, tlb, keys):
    for key in {k for k in keys}:  # fires
        queue.schedule(10, key)
    for key in set(keys) | {0}:  # fires
        queue.schedule(10, key)
    for key in tlb.resident_keys():  # fires
        queue.schedule(10, key)
    for key in pending.keys():  # fires
        queue.schedule(10, key)
    doubled = [k * 2 for k in set(keys)]  # fires
    for key in sorted(set(keys)):
        queue.schedule(10, key)
    for key in pending.keys():
        doubled.append(key)
    for key in sorted(tlb.resident_keys()):
        doubled.append(key)
    unordered_is_fine_here = {k * 2 for k in set(keys)}
    return doubled, unordered_is_fine_here
