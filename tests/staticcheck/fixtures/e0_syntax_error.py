"""Fixture for E0: this file intentionally does not parse."""

def broken(:
    pass
