"""Fixture for D7 (stats-ownership).  Never executed."""


class FakePolicy:
    def account(self, gpu, system, pid):
        self.stats.inc("hits")
        self.iommu.stats.inc("spills")
        gpu.stats.inc("hits")  # fires
        system.iommu.stats.inc("walks")  # fires
        system.stats_for(pid).inc("walks")
        gpu.stats["hits"] = 3  # fires
        self.stats["hits"] = 3
