"""Fixture for D2 (wall-clock-or-unseeded-random).  Never executed."""

import random
import time
from datetime import datetime

import numpy as np


def stamp():
    started = time.time()  # fires
    nanos = time.time_ns()  # fires
    when = datetime.now()  # fires
    host_side = time.perf_counter()
    return started, nanos, when, host_side


def jitter():
    a = random.random()  # fires
    b = random.randint(0, 7)  # fires
    c = np.random.rand()  # fires
    rng = np.random.default_rng(7)
    seeded = random.Random(7)
    return a, b, c, rng.random() + seeded.random()
