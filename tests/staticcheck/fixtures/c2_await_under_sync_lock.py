"""Fixture for C2 (await-under-sync-lock).  Never imported or executed.

Lines tagged ``# fires`` must be reported; everything else must not.
The flock lines legitimately also trip C1 (an flock acquisition blocks
the loop) — suppressed inline so this fixture isolates C2.
"""
import asyncio
import fcntl
import threading

state_lock = threading.Lock()
aio_lock = asyncio.Lock()


async def bad_sync_lock(queue):
    with state_lock:
        await queue.get()  # fires


async def bad_flock(handle, queue):
    fcntl.flock(handle, fcntl.LOCK_EX)  # staticcheck: ignore[C1] -- isolating C2
    try:
        await queue.get()  # fires
    finally:
        fcntl.flock(handle, fcntl.LOCK_UN)


async def good_async_lock(queue):
    async with aio_lock:
        await queue.get()


async def good_release_before_await(handle, queue):
    fcntl.flock(handle, fcntl.LOCK_EX)  # staticcheck: ignore[C1] -- isolating C2
    try:
        handle.seek(0)
    finally:
        fcntl.flock(handle, fcntl.LOCK_UN)
    await queue.get()
