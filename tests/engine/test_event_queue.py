"""Unit tests for the discrete-event kernel."""

import pytest

from repro.engine.event_queue import EventQueue, SimulationError


def test_events_execute_in_time_order():
    queue = EventQueue()
    order = []
    queue.schedule(30, order.append, "c")
    queue.schedule(10, order.append, "a")
    queue.schedule(20, order.append, "b")
    queue.run()
    assert order == ["a", "b", "c"]
    assert queue.now == 30


def test_same_cycle_events_are_fifo():
    queue = EventQueue()
    order = []
    for tag in range(5):
        queue.schedule(42, order.append, tag)
    queue.run()
    assert order == [0, 1, 2, 3, 4]


def test_schedule_after_uses_current_time():
    queue = EventQueue()
    seen = []

    def chain():
        seen.append(queue.now)
        if len(seen) < 3:
            queue.schedule_after(5, chain)

    queue.schedule(10, chain)
    queue.run()
    assert seen == [10, 15, 20]


def test_cannot_schedule_in_the_past():
    queue = EventQueue()
    queue.schedule(10, lambda: None)
    queue.run()
    with pytest.raises(SimulationError):
        queue.schedule(5, lambda: None)


def test_negative_delay_rejected():
    queue = EventQueue()
    with pytest.raises(SimulationError):
        queue.schedule_after(-1, lambda: None)  # staticcheck: ignore[D3] -- asserts the raise


def test_run_until_is_inclusive():
    queue = EventQueue()
    seen = []
    queue.schedule(10, seen.append, 1)
    queue.schedule(20, seen.append, 2)
    queue.schedule(21, seen.append, 3)
    queue.run(until=20)
    assert seen == [1, 2]
    assert queue.now == 20
    queue.run()
    assert seen == [1, 2, 3]


def test_until_below_next_event_time_advances_clock():
    queue = EventQueue()
    queue.schedule(15, lambda: None)
    # The bound is below the next event's time: nothing executes, but the
    # clock advances to the bound.
    assert queue.run(until=10) == 10
    assert queue.now == 10
    assert len(queue) == 1


def test_until_bounded_run_cannot_rewind_time():
    """Regression: after ``run(until=T)`` reported ``now == T``, a later
    run with a smaller bound must not rewind the clock — otherwise an
    event could be scheduled (and executed) at a cycle earlier than the
    ``now`` the first run reported."""
    queue = EventQueue()
    hits = []
    queue.schedule(15, hits.append, "late")
    assert queue.run(until=10) == 10
    assert queue.run(until=3) == 10  # smaller bound: clock stays put
    assert queue.now == 10
    with pytest.raises(SimulationError):
        queue.schedule(7, hits.append, "earlier-than-reported-now")
    queue.run()
    assert hits == ["late"]
    assert queue.now == 15


def test_run_max_events():
    queue = EventQueue()
    seen = []
    for i in range(10):
        queue.schedule(i, seen.append, i)
    queue.run(max_events=4)
    assert seen == [0, 1, 2, 3]
    assert len(queue) == 6


def test_events_scheduled_during_run_execute():
    queue = EventQueue()
    seen = []

    def first():
        queue.schedule_after(0, seen.append, "nested")

    queue.schedule(1, first)
    queue.run()
    assert seen == ["nested"]


def test_step_returns_false_when_empty():
    queue = EventQueue()
    assert queue.step() is False
    queue.schedule(0, lambda: None)
    assert queue.step() is True
    assert queue.step() is False


def test_events_executed_counter():
    queue = EventQueue()
    for i in range(7):
        queue.schedule(i, lambda: None)
    queue.run()
    assert queue.events_executed == 7


def test_peek_time():
    queue = EventQueue()
    assert queue.peek_time() is None
    queue.schedule(99, lambda: None)
    assert queue.peek_time() == 99


def test_run_is_not_reentrant():
    queue = EventQueue()

    def reenter():
        with pytest.raises(SimulationError):
            queue.run()

    queue.schedule(0, reenter)
    queue.run()
