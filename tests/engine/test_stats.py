"""Unit tests for the statistics containers."""

import pytest

from repro.engine.stats import CounterSet, LatencyAccumulator


class TestCounterSet:
    def test_missing_counter_reads_zero(self):
        stats = CounterSet()
        assert stats["nothing"] == 0

    def test_inc_and_read(self):
        stats = CounterSet()
        stats.inc("hits")
        stats.inc("hits", 4)
        assert stats["hits"] == 5

    def test_negative_increment(self):
        stats = CounterSet()
        stats.inc("x", 3)
        stats.inc("x", -1)
        assert stats["x"] == 2

    def test_setitem(self):
        stats = CounterSet()
        stats["y"] = 10
        assert stats["y"] == 10

    def test_contains_and_iter(self):
        stats = CounterSet()
        stats.inc("a")
        stats.inc("b")
        assert "a" in stats
        assert "c" not in stats
        assert sorted(stats) == ["a", "b"]

    def test_as_dict_is_snapshot(self):
        stats = CounterSet()
        stats.inc("a")
        snapshot = stats.as_dict()
        stats.inc("a")
        assert snapshot == {"a": 1}
        assert stats["a"] == 2

    def test_merge(self):
        first = CounterSet()
        second = CounterSet()
        first.inc("a", 2)
        second.inc("a", 3)
        second.inc("b", 1)
        first.merge(second)
        assert first["a"] == 5
        assert first["b"] == 1

    def test_ratio(self):
        stats = CounterSet()
        stats.inc("hit", 3)
        stats.inc("miss", 1)
        assert stats.ratio("hit", "hit", "miss") == pytest.approx(0.75)

    def test_ratio_zero_denominator(self):
        stats = CounterSet()
        assert stats.ratio("hit", "hit", "miss") == 0.0


class TestLatencyAccumulator:
    def test_empty_mean_is_zero(self):
        acc = LatencyAccumulator()
        assert acc.mean == 0.0
        assert acc.count == 0

    def test_record_and_mean(self):
        acc = LatencyAccumulator()
        for value in (10, 20, 30):
            acc.record(value)
        assert acc.count == 3
        assert acc.mean == pytest.approx(20.0)
        assert acc.max == 30

    def test_negative_latency_rejected(self):
        acc = LatencyAccumulator()
        with pytest.raises(ValueError):
            acc.record(-1)

    def test_min_tracking(self):
        acc = LatencyAccumulator()
        for value in (30, 10, 20):
            acc.record(value)
        assert acc.min == 10
        acc.record(5)
        assert acc.min == 5

    def test_min_of_empty_is_zero(self):
        assert LatencyAccumulator().min == 0

    def test_zero_sample_sets_min(self):
        acc = LatencyAccumulator()
        acc.record(7)
        acc.record(0)
        assert acc.min == 0

    def test_merge_is_lossless(self):
        a, b, combined = (
            LatencyAccumulator(), LatencyAccumulator(), LatencyAccumulator()
        )
        for v in (10, 50):
            a.record(v)
            combined.record(v)
        for v in (5, 500):
            b.record(v)
            combined.record(v)
        a.merge(b)
        for attr in ("count", "total", "min", "max"):
            assert getattr(a, attr) == getattr(combined, attr)
        assert a.mean == pytest.approx(combined.mean)

    def test_merge_empty_is_noop_both_ways(self):
        a, empty = LatencyAccumulator(), LatencyAccumulator()
        a.record(42)
        a.merge(empty)
        assert a.count == 1 and a.min == 42
        empty.merge(a)
        assert empty.count == 1 and empty.min == 42 and empty.max == 42
