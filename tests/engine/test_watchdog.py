"""Unit and system tests for the forward-progress watchdog."""

import pytest

from repro.config.presets import baseline_config
from repro.engine import SimulationStalledError, Watchdog
from repro.sim.system import MultiGPUSystem
from repro.workloads.multi_app import build_single_app_workload


def make_system(**kwargs):
    config = baseline_config()
    workload = build_single_app_workload("MM", config, scale=0.05)
    return MultiGPUSystem(config, workload, "least-tlb", **kwargs)


class TestWatchdogUnit:
    def test_rejects_bad_parameters(self):
        system = make_system()
        with pytest.raises(ValueError):
            Watchdog(system, interval=0)
        with pytest.raises(ValueError):
            Watchdog(system, patience=0)

    def test_not_armed_without_faults(self):
        """Zero-perturbation: a fault-free system schedules no watchdog
        events unless explicitly asked to."""
        assert make_system().watchdog is None
        assert make_system(faults="drop-remote:0.5").watchdog is not None
        assert make_system(watchdog=True).watchdog is not None
        assert make_system(faults="drop-remote:0.5", watchdog=False).watchdog is None

    def test_progress_resets_patience(self):
        system = make_system(watchdog=True)
        dog = system.watchdog
        dog.arm()
        for _ in range(10):
            # Progress before every tick: the watchdog must never fire.
            system.progress_marker += 1
            system.queue.run(until=system.queue.now + dog.interval)
        assert dog.ticks == 10

    def test_fires_after_patience_without_progress(self):
        system = make_system(watchdog=True)
        dog = system.watchdog
        dog.arm()
        with pytest.raises(SimulationStalledError) as excinfo:
            system.queue.run(until=dog.interval * (dog.patience + 1))
        assert "no translation retired" in str(excinfo.value)
        assert excinfo.value.diagnostics["reason"].startswith("watchdog")

    def test_stands_down_once_halted(self):
        system = make_system(watchdog=True)
        system.watchdog.arm()
        system.halted = True
        # The tick returns without rescheduling: the queue drains.
        system.queue.run()
        assert len(system.queue) == 0


class TestStallDiagnosticsNameBackend:
    """A stall report must say which backend wedged, so a functional-
    backend hang is never chased through event-engine code."""

    def test_event_system_diagnostics_carry_backend(self):
        diagnostics = make_system().stall_diagnostics("test")
        assert diagnostics["backend"] == "event"

    def test_error_string_names_backend(self):
        error = SimulationStalledError(
            "no forward progress", {"backend": "functional", "cycle": 12}
        )
        assert "backend=functional" in str(error)
        assert "cycle=12" in str(error)

    def test_fired_watchdog_error_names_backend(self):
        system = make_system(watchdog=True)
        system.watchdog.arm()
        with pytest.raises(SimulationStalledError) as excinfo:
            system.queue.run(
                until=system.watchdog.interval * (system.watchdog.patience + 1)
            )
        assert excinfo.value.diagnostics["backend"] == "event"
        assert "backend=event" in str(excinfo.value)


class TestStallDetectionEndToEnd:
    def test_watchdog_converts_lost_responses_into_error(self):
        system = make_system(faults="drop-response:1.0")
        with pytest.raises(SimulationStalledError) as excinfo:
            system.run()
        diag = excinfo.value.diagnostics
        assert diag["pids_pending"] == [1]
        assert diag["fault_injections"]["drop-response_injected"] > 0
        # The loss shows up where it happened: GPU MSHRs still waiting.
        assert any(g["mshr_entries"] > 0 for g in diag["gpus"].values())

    def test_queue_drain_check_is_always_on(self):
        """Even with the watchdog disabled, a drained queue with work
        outstanding must raise, not return garbage results."""
        system = make_system(faults="drop-response:1.0", watchdog=False)
        with pytest.raises(SimulationStalledError, match="drained"):
            system.run()

    def test_max_events_cap_raises_with_diagnostics(self):
        system = make_system()
        with pytest.raises(SimulationStalledError) as excinfo:
            system.run(max_events=200)
        assert "event cap" in str(excinfo.value)
        assert excinfo.value.diagnostics["events_executed"] == 200

    def test_max_events_generous_cap_completes(self):
        result = make_system().run(max_events=50_000_000)
        assert result.total_cycles > 0

    def test_diagnostics_structure(self):
        system = make_system(faults="drop-response:1.0")
        with pytest.raises(SimulationStalledError) as excinfo:
            system.run()
        diag = excinfo.value.diagnostics
        for key in (
            "reason", "cycle", "events_executed", "queue_length",
            "pending_table", "gpus", "walkers", "pri", "interconnect",
        ):
            assert key in diag
        assert str(excinfo.value).count("|") >= 3  # compact summary line


class TestStalledErrorFormatting:
    def test_str_without_diagnostics(self):
        err = SimulationStalledError("stuck")
        assert str(err) == "stuck"
        assert err.diagnostics == {}

    def test_str_with_diagnostics(self):
        err = SimulationStalledError(
            "stuck",
            {"cycle": 5, "events_executed": 9, "pending_table": [], "queue_length": 2},
        )
        assert str(err) == "stuck | cycle=5 | events=9 | pending=0 | queue=2"
