"""Additional determinism and ordering tests for the event kernel.

The translation protocols rely on two kernel guarantees: global
``(time, insertion)`` ordering, and stable behaviour when callbacks
schedule more work for the *current* cycle.  These tests pin both.
"""

import random

from repro.engine.event_queue import EventQueue


def test_interleaved_schedulers_preserve_global_order():
    queue = EventQueue()
    log = []
    # Two "components" schedule interleaved events for identical times.
    for i in range(10):
        queue.schedule(100, log.append, ("a", i))
        queue.schedule(100, log.append, ("b", i))
    queue.run()
    assert log == [(tag, i) for i in range(10) for tag in ("a", "b")]


def test_zero_delay_cascade_runs_same_cycle():
    queue = EventQueue()
    depth = []

    def cascade(level):
        depth.append((queue.now, level))
        if level < 5:
            queue.schedule_after(0, cascade, level + 1)

    queue.schedule(7, cascade, 0)
    queue.run()
    assert depth == [(7, level) for level in range(6)]


def test_randomized_schedule_executes_sorted():
    rng = random.Random(3)
    queue = EventQueue()
    times = [rng.randrange(0, 1000) for _ in range(500)]
    executed = []
    for t in times:
        queue.schedule(t, executed.append, t)
    queue.run()
    assert executed == sorted(times)
    assert queue.events_executed == 500


def test_now_is_stable_within_callback():
    queue = EventQueue()
    observed = []

    def check():
        observed.append(queue.now)
        observed.append(queue.now)

    queue.schedule(42, check)
    queue.run()
    assert observed == [42, 42]


def test_len_reflects_pending_events():
    queue = EventQueue()
    for t in range(5):
        queue.schedule(t, lambda: None)
    assert len(queue) == 5
    queue.step()
    assert len(queue) == 4
