"""Property-based tests for the workload pattern generators."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.patterns import (
    PATTERNS,
    PatternParams,
    far_region_bounds,
    generate_page_runs,
    partition_bounds,
)

pattern_st = st.sampled_from(PATTERNS)
gpus_st = st.sampled_from([1, 2, 4, 8])


def make_params(pattern, footprint, p_reuse, far_frac, seq):
    return PatternParams(
        pattern=pattern,
        footprint_pages=footprint,
        p_reuse=p_reuse,
        reuse_window=16,
        seq_frac=seq,
        far_frac=far_frac,
        far_region_pages=max(1, footprint // 2) if far_frac > 0 else 0,
    )


@given(
    pattern=pattern_st,
    num_gpus=gpus_st,
    footprint=st.integers(16, 4096),
    p_reuse=st.floats(0.0, 0.8),
    far_frac=st.floats(0.0, 0.15),
    seq=st.floats(0.0, 1.0),
    runs=st.integers(0, 800),
    seed=st.integers(0, 100),
)
@settings(max_examples=80, deadline=None)
def test_pages_always_within_footprint(
    pattern, num_gpus, footprint, p_reuse, far_frac, seq, runs, seed
):
    params = make_params(pattern, footprint, p_reuse, far_frac, seq)
    for gpu in range(num_gpus):
        pages = generate_page_runs(
            params, gpu, num_gpus, runs, np.random.default_rng(seed)
        )
        assert len(pages) == runs
        if runs:
            assert pages.min() >= 0
            assert pages.max() < footprint


@given(
    num_gpus=gpus_st,
    footprint=st.integers(16, 4096),
    seq=st.floats(0.0, 1.0),
    seed=st.integers(0, 50),
)
@settings(max_examples=60, deadline=None)
def test_partition_pattern_never_shares(num_gpus, footprint, seq, seed):
    params = make_params("partition", footprint, 0.4, 0.1, seq)
    streams = [
        set(
            generate_page_runs(
                params, gpu, num_gpus, 400, np.random.default_rng(seed + gpu)
            ).tolist()
        )
        for gpu in range(num_gpus)
    ]
    for a in range(num_gpus):
        lo, hi = partition_bounds(a, num_gpus, footprint)
        assert all(lo <= v < hi for v in streams[a])


@given(num_gpus=gpus_st, footprint=st.integers(16, 4096))
@settings(max_examples=60, deadline=None)
def test_partition_bounds_tile_footprint(num_gpus, footprint):
    covered = []
    for gpu in range(num_gpus):
        lo, hi = partition_bounds(gpu, num_gpus, footprint)
        assert lo < hi
        covered.append((lo, hi))
    assert covered[0][0] == 0
    assert covered[-1][1] == footprint
    for (_, hi_a), (lo_b, _) in zip(covered, covered[1:]):
        assert hi_a == lo_b


@given(
    pattern=pattern_st,
    num_gpus=gpus_st,
    footprint=st.integers(32, 2048),
)
@settings(max_examples=60, deadline=None)
def test_far_region_within_footprint(pattern, num_gpus, footprint):
    params = make_params(pattern, footprint, 0.2, 0.1, 0.5)
    for gpu in range(num_gpus):
        lo, hi = far_region_bounds(params, gpu, num_gpus)
        assert 0 <= lo < hi <= footprint


@given(
    pattern=pattern_st,
    seed=st.integers(0, 1000),
    runs=st.integers(1, 500),
)
@settings(max_examples=60, deadline=None)
def test_generation_is_deterministic(pattern, seed, runs):
    params = make_params(pattern, 1024, 0.3, 0.1, 0.4)
    a = generate_page_runs(params, 1, 4, runs, np.random.default_rng(seed))
    b = generate_page_runs(params, 1, 4, runs, np.random.default_rng(seed))
    assert np.array_equal(a, b)
