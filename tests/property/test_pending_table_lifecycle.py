"""Interleaving tests for the pending-table protocol.

One translation key can have up to four responders racing: the page walk,
its hardening timeout, the remote-L2 probe, and the probe's timeout.  The
protocol must deliver **exactly one** response to the waiters and reap
the pending entry no matter which order those events land in.  These
tests drive the policy's handlers directly, in *every* permutation of
the racing completions, and assert both properties after the event queue
drains.
"""

from __future__ import annotations

from itertools import permutations

import numpy as np
import pytest

from repro.config.system import (
    GPUConfig,
    IOMMUConfig,
    InterconnectConfig,
    SystemConfig,
    TLBLevelConfig,
    TrackerConfig,
)
from repro.faults import HardeningConfig
from repro.gpu.ats import ATSRequest
from repro.sim.system import MultiGPUSystem
from repro.structures.page_table import WalkResult
from repro.structures.tlb import TLBEntry
from repro.workloads.trace import CUStream, Placement, Workload

PID = 1
VPN = 77
PPN = 4242

RESPONSE_SOURCES = ("iommu", "walk", "pending", "remote", "fault")


def _tiny_config() -> SystemConfig:
    return SystemConfig(
        num_gpus=2,
        gpu=GPUConfig(
            num_cus=1,
            slots_per_cu=2,
            l1_tlb=TLBLevelConfig(num_entries=2, associativity=2, lookup_latency=1),
            l2_tlb=TLBLevelConfig(num_entries=8, associativity=4, lookup_latency=3),
        ),
        iommu=IOMMUConfig(
            tlb=TLBLevelConfig(num_entries=16, associativity=4, lookup_latency=10),
            num_walkers=2,
            walker_threads=2,
            walk_latency=40,
        ),
        tracker=TrackerConfig(total_entries=32, kind="perfect"),
        interconnect=InterconnectConfig(host_link_latency=15, peer_link_latency=5),
        seed=3,
    )


def _tiny_workload() -> Workload:
    streams = []
    placements = []
    for gpu_id in (0, 1):
        stream = CUStream(
            np.array([VPN], dtype=np.int64),
            np.full(1, 37, dtype=np.int64),
            np.ones(1, dtype=np.int64),
        )
        streams.append(stream)
        placements.append(
            Placement(
                gpu_id=gpu_id, pid=PID, app_name="race", cu_ids=[gpu_id * 4],
                streams=[stream],
            )
        )
    return Workload(
        name="race", kind="single", placements=placements,
        app_names={PID: "race"},
    )


def _make_system(*, remote_entry: bool) -> tuple[MultiGPUSystem, ATSRequest]:
    """A system with one pending entry racing a walk and a remote probe.

    ``remote_entry`` controls whether GPU 1's L2 actually holds the
    translation (probe hit) or not (tracker false positive)."""
    system = MultiGPUSystem(
        _tiny_config(),
        _tiny_workload(),
        "least-tlb",
        hardening=HardeningConfig(
            walk_timeout=500, probe_timeout=200, retry_backoff_base=50
        ),
        watchdog=False,
    )
    system.page_tables.table_for(PID).map(VPN, PPN)
    if remote_entry:
        system.gpus[1].l2_tlb.insert(TLBEntry(PID, VPN, PPN))
    request = ATSRequest(gpu_id=0, pid=PID, vpn=VPN, issue_time=0, measured=True)
    pending = system.iommu.pending.create(request)
    pending.walk_pending = True
    pending.walk_attempts = 1
    pending.walk_generation = 1
    pending.remote_pending = True
    pending.remote_generation = 1
    return system, request


def _responses_delivered(system: MultiGPUSystem) -> int:
    return sum(
        system.iommu.stats[f"responses_{source}"] for source in RESPONSE_SOURCES
    )


def _assert_exactly_once(system: MultiGPUSystem) -> None:
    system.queue.run()
    assert (PID, VPN) not in system.iommu.pending, "pending entry leaked"
    assert _responses_delivered(system) == 1, (
        f"waiter served {_responses_delivered(system)} times"
    )


def _event_set(system: MultiGPUSystem, request: ATSRequest, *, walk_faulted: bool):
    policy = system.policy
    result = (
        WalkResult(ppn=None, levels_touched=4, faulted=True)
        if walk_faulted
        else WalkResult(ppn=PPN, levels_touched=4, faulted=False)
    )
    serial = system.iommu.pending.get((PID, VPN)).serial
    return {
        "walk-response": lambda: policy._walk_complete(request, result),
        "walk-timeout": lambda: policy._walk_timed_out(request, serial, 1),
        "probe-response": lambda: policy._remote_probe(request, 1, serial),
        "probe-timeout": lambda: policy._probe_timed_out(request, serial, 1),
    }


class TestEveryInterleaving:
    @pytest.mark.parametrize("remote_entry", [True, False])
    def test_all_orders_of_all_four_racers(self, remote_entry):
        events = ["walk-response", "walk-timeout", "probe-response", "probe-timeout"]
        for order in permutations(events):
            system, request = _make_system(remote_entry=remote_entry)
            handlers = _event_set(system, request, walk_faulted=False)
            for name in order:
                handlers[name]()
            _assert_exactly_once(system)

    @pytest.mark.parametrize("remote_entry", [True, False])
    def test_faulting_walk_orders(self, remote_entry):
        """A faulting walk must fall back to the PRI path (or lose to the
        probe) without double service."""
        events = ["walk-response", "probe-response", "probe-timeout"]
        for order in permutations(events):
            system, request = _make_system(remote_entry=remote_entry)
            handlers = _event_set(system, request, walk_faulted=True)
            for name in order:
                handlers[name]()
            _assert_exactly_once(system)

    def test_timeouts_alone_recover_the_request(self):
        """Both responses lost: the timeouts alone must re-drive the key
        to completion via a retried walk."""
        for order in permutations(["walk-timeout", "probe-timeout"]):
            system, request = _make_system(remote_entry=False)
            handlers = _event_set(system, request, walk_faulted=False)
            for name in order:
                handlers[name]()
            _assert_exactly_once(system)

    def test_stale_generation_timeouts_are_ignored(self):
        """Timeouts armed for generation 1 must not fire against a retried
        generation-2 walk."""
        system, request = _make_system(remote_entry=False)
        pending = system.iommu.pending.get((PID, VPN))
        pending.walk_generation = 2
        pending.remote_generation = 2
        before = pending.walk_pending, pending.remote_pending
        system.policy._walk_timed_out(request, pending.serial, 1)
        system.policy._probe_timed_out(request, pending.serial, 1)
        assert (pending.walk_pending, pending.remote_pending) == before
        assert system.iommu.stats["walk_timeouts"] == 0
        assert system.iommu.stats["probe_timeouts"] == 0
        # Resolve the entry cleanly via the current generation.
        system.policy._walk_complete(
            request, WalkResult(ppn=PPN, levels_touched=4, faulted=False)
        )
        system.policy._probe_timed_out(request, pending.serial, 2)
        _assert_exactly_once(system)

    def test_stale_serial_timeouts_ignore_reincarnated_entry(self):
        """A timeout armed against a dead incarnation of the key must not
        cancel the live one — generations restart at 0 on re-creation, so
        the serial is the only thing separating them (this exact aliasing
        once cancelled a live walk and leaked its telemetry span)."""
        system, request = _make_system(remote_entry=False)
        old = system.iommu.pending.get((PID, VPN))
        old_serial = old.serial
        # First incarnation resolves and is reaped.
        old.remote_pending = False
        system.policy._walk_complete(
            request, WalkResult(ppn=PPN, levels_touched=4, faulted=False)
        )
        assert (PID, VPN) not in system.iommu.pending
        # Same key misses again: new incarnation, same generation numbers.
        retry = ATSRequest(gpu_id=0, pid=PID, vpn=VPN, issue_time=50, measured=True)
        fresh = system.iommu.pending.create(retry)
        fresh.walk_pending = True
        fresh.walk_attempts = 1
        fresh.walk_generation = 1
        fresh.remote_pending = True
        fresh.remote_generation = 1
        assert fresh.serial != old_serial
        # The dead incarnation's timeouts fire: they must be no-ops.
        system.policy._walk_timed_out(request, old_serial, 1)
        system.policy._probe_timed_out(request, old_serial, 1)
        assert fresh.walk_pending and fresh.remote_pending
        assert system.iommu.stats["walk_timeouts"] == 0
        assert system.iommu.stats["probe_timeouts"] == 0
        # And its late probe response is stale, not a serve.
        system.policy._remote_probe(request, 1, old_serial)
        assert system.iommu.stats["stale_probe_responses"] == 1
        assert not fresh.served

    def test_stale_responses_after_reap_are_counted_not_fatal(self):
        system, request = _make_system(remote_entry=False)
        pending = system.iommu.pending.get((PID, VPN))
        pending.remote_pending = False
        system.policy._walk_complete(
            request, WalkResult(ppn=PPN, levels_touched=4, faulted=False)
        )
        assert (PID, VPN) not in system.iommu.pending
        # Late echoes of every kind against the reaped key:
        system.policy._walk_complete(
            request, WalkResult(ppn=PPN, levels_touched=4, faulted=False)
        )
        system.policy._remote_probe(request, 1, 0)
        system.policy._fault_serviced(request, PPN)
        assert system.iommu.stats["stale_walk_responses"] == 1
        assert system.iommu.stats["stale_probe_responses"] == 1
        assert system.iommu.stats["stale_fault_responses"] == 1
        _assert_exactly_once(system)
