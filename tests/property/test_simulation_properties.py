"""Property-based tests on whole-simulation invariants.

These run miniature systems over randomized synthetic streams and check
the conservation laws the protocol must never violate, under every policy.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.system import (
    GPUConfig,
    IOMMUConfig,
    InterconnectConfig,
    SystemConfig,
    TLBLevelConfig,
    TrackerConfig,
)
from repro.sim.system import MultiGPUSystem
from repro.workloads.trace import CUStream, Placement, Workload

POLICIES = ["baseline", "strictly-inclusive", "exclusive", "tlb-probing", "least-tlb"]


def tiny_config(seed=1):
    return SystemConfig(
        num_gpus=2,
        gpu=GPUConfig(
            num_cus=2,
            slots_per_cu=2,
            l1_tlb=TLBLevelConfig(num_entries=2, associativity=2, lookup_latency=1),
            l2_tlb=TLBLevelConfig(num_entries=8, associativity=4, lookup_latency=3),
        ),
        iommu=IOMMUConfig(
            tlb=TLBLevelConfig(num_entries=16, associativity=4, lookup_latency=10),
            num_walkers=2,
            walker_threads=2,
            walk_latency=40,
        ),
        tracker=TrackerConfig(total_entries=32, kind="perfect"),
        interconnect=InterconnectConfig(host_link_latency=15, peer_link_latency=5),
        seed=seed,
    )


def build_workload(gpu_vpns, kind):
    placements = []
    footprint = set()
    for gpu_id, vpns in enumerate(gpu_vpns):
        if not vpns:
            continue
        n = len(vpns)
        placements.append(
            Placement(
                gpu_id=gpu_id, pid=1, app_name="rand", cu_ids=[0],
                streams=[CUStream(
                    np.array(vpns, dtype=np.int64),
                    np.full(n, 37, dtype=np.int64),
                    np.ones(n, dtype=np.int64),
                )],
            )
        )
        footprint.update(vpns)
    return Workload(
        name="rand", kind=kind, placements=placements, app_names={1: "rand"},
        footprints={1: np.array(sorted(footprint), dtype=np.int64)},
    )


streams_st = st.tuples(
    st.lists(st.integers(0, 30), min_size=1, max_size=60),
    st.lists(st.integers(0, 30), min_size=0, max_size=60),
)


@pytest.mark.parametrize("policy", POLICIES)
@given(gpu_vpns=streams_st)
@settings(max_examples=25, deadline=None)
def test_every_run_completes_and_translations_are_correct(policy, gpu_vpns):
    """Liveness + correctness: all runs finish, no TLB ever holds a
    translation that disagrees with the page table, and capacities hold."""
    kind = "single" if policy == "least-tlb" else "multi"
    workload = build_workload(gpu_vpns, kind)
    system = MultiGPUSystem(tiny_config(), workload, policy)
    result = system.run(max_cycles=5_000_000)
    # Liveness: everything issued also completed.
    measured = workload.measured_runs_for(1)
    assert result.apps[1].counters.get("runs", 0) == measured
    assert system.halted
    assert not any(gpu.mshr for gpu in system.gpus)
    assert len(system.iommu.pending) == 0

    # Translation correctness everywhere.
    tables = system.page_tables
    for gpu in system.gpus:
        for entry in gpu.l2_tlb.iter_entries():
            assert tables.walk(entry.pid, entry.vpn).ppn == entry.ppn
        for l1 in gpu.l1_tlbs.values():
            for entry in l1.iter_entries():
                assert tables.walk(entry.pid, entry.vpn).ppn == entry.ppn
    for entry in system.iommu.tlb.iter_entries():
        assert tables.walk(entry.pid, entry.vpn).ppn == entry.ppn

    # Capacity invariants.
    assert len(system.iommu.tlb) <= 16
    for gpu in system.gpus:
        assert len(gpu.l2_tlb) <= 8


@given(gpu_vpns=streams_st)
@settings(max_examples=25, deadline=None)
def test_least_tlb_eviction_counters_match_contents(gpu_vpns):
    """The Eviction Counters must equal the per-owner census of the IOMMU
    TLB at quiescence (they drive spill placement)."""
    workload = build_workload(gpu_vpns, "multi")
    system = MultiGPUSystem(tiny_config(), workload, "least-tlb")
    system.run(max_cycles=5_000_000)
    census = [0] * system.config.num_gpus
    for entry in system.iommu.tlb.iter_entries():
        if entry.owner_gpu >= 0:
            census[entry.owner_gpu] += 1
    assert census == system.iommu.eviction_counters


@given(gpu_vpns=streams_st)
@settings(max_examples=25, deadline=None)
def test_least_tlb_tracker_exactly_mirrors_l2_contents(gpu_vpns):
    """With a perfect tracker, the tracker's view must equal the union of
    L2 contents once the system quiesces."""
    workload = build_workload(gpu_vpns, "single")
    system = MultiGPUSystem(tiny_config(), workload, "least-tlb")
    system.run(max_cycles=5_000_000)
    tracker = system.policy.tracker
    for gpu in system.gpus:
        for vpn in range(31):
            resident = gpu.l2_tlb.contains(1, vpn)
            tracked = gpu.gpu_id in tracker.query(1, vpn)
            assert resident == tracked, (gpu.gpu_id, vpn)


@given(gpu_vpns=streams_st, seed=st.integers(1, 5))
@settings(max_examples=15, deadline=None)
def test_determinism(gpu_vpns, seed):
    def run():
        workload = build_workload(gpu_vpns, "multi")
        return MultiGPUSystem(tiny_config(seed), workload, "least-tlb").run()

    a, b = run(), run()
    assert a.total_cycles == b.total_cycles
    assert a.apps[1].counters == b.apps[1].counters


@given(gpu_vpns=streams_st)
@settings(max_examples=20, deadline=None)
def test_strictly_inclusive_invariant_holds_at_quiescence(gpu_vpns):
    workload = build_workload(gpu_vpns, "multi")
    system = MultiGPUSystem(tiny_config(), workload, "strictly-inclusive")
    system.run(max_cycles=5_000_000)
    iommu_keys = system.iommu.tlb.resident_keys()
    for gpu in system.gpus:
        assert gpu.l2_tlb.resident_keys() <= iommu_keys
