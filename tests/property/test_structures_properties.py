"""Property-based tests (hypothesis) for the core data structures."""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.reuse_distance import COLD, reuse_distances
from repro.structures.cuckoo_filter import CuckooFilter
from repro.structures.page_table import PageTableManager
from repro.structures.tlb import SetAssociativeTLB, TLBEntry

keys_st = st.lists(
    st.tuples(st.integers(1, 3), st.integers(0, 63)), min_size=0, max_size=200
)


class TestTLBProperties:
    @given(
        ops=st.lists(
            st.tuples(st.sampled_from(["insert", "lookup", "remove"]),
                      st.integers(0, 40)),
            max_size=300,
        ),
        ways=st.sampled_from([1, 2, 4, 8]),
    )
    @settings(max_examples=60, deadline=None)
    def test_capacity_never_exceeded(self, ops, ways):
        tlb = SetAssociativeTLB(num_entries=8, associativity=ways)
        for op, vpn in ops:
            if op == "insert":
                tlb.insert(TLBEntry(1, vpn, vpn))
            elif op == "lookup":
                tlb.lookup(1, vpn)
            else:
                tlb.remove(1, vpn)
            assert len(tlb) <= 8
            # No set may exceed its associativity.
            assert all(len(s) <= ways for s in tlb._sets)

    @given(ops=st.lists(st.integers(0, 100), min_size=1, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_tlb_matches_reference_lru(self, ops):
        """A fully associative LRU TLB must agree with a reference model."""
        capacity = 8
        tlb = SetAssociativeTLB(num_entries=capacity, associativity=capacity)
        reference: OrderedDict[int, int] = OrderedDict()
        for vpn in ops:
            entry = tlb.lookup(1, vpn)
            if vpn in reference:
                assert entry is not None
                reference.move_to_end(vpn)
            else:
                assert entry is None
                tlb.insert(TLBEntry(1, vpn, vpn))
                reference[vpn] = vpn
                if len(reference) > capacity:
                    reference.popitem(last=False)
            assert tlb.resident_keys() == {(1, v) for v in reference}

    @given(vpns=st.lists(st.integers(0, 1000), max_size=100))
    @settings(max_examples=40, deadline=None)
    def test_insert_then_peek(self, vpns):
        tlb = SetAssociativeTLB(num_entries=4096, associativity=64)
        for vpn in vpns:
            tlb.insert(TLBEntry(1, vpn, vpn + 1))
        for vpn in vpns:
            assert tlb.peek(1, vpn).ppn == vpn + 1


class TestCuckooProperties:
    @given(keys=keys_st)
    @settings(max_examples=60, deadline=None)
    def test_no_false_negatives_below_capacity(self, keys):
        """Every inserted (and not displaced) key must test positive while
        the filter is far from full."""
        filt = CuckooFilter(num_entries=1024, fingerprint_bits=12)
        for pid, vpn in keys:
            filt.insert(pid, vpn)
        if filt.stats.displaced == 0:
            assert all(filt.contains(pid, vpn) for pid, vpn in keys)

    @given(keys=st.lists(st.tuples(st.integers(1, 2), st.integers(0, 31)),
                         max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_insert_delete_conservation(self, keys):
        """Population equals insertions minus deletions minus displaced."""
        filt = CuckooFilter(num_entries=256, fingerprint_bits=12)
        for pid, vpn in keys:
            filt.insert(pid, vpn)
        assert len(filt) == filt.stats.insertions - filt.stats.displaced
        for pid, vpn in keys:
            filt.delete(pid, vpn)
        assert len(filt) == (
            filt.stats.insertions - filt.stats.displaced - filt.stats.deletions
        )


class TestPageTableProperties:
    @given(vpns=st.lists(st.integers(0, 2**36 - 1), unique=True, max_size=100))
    @settings(max_examples=40, deadline=None)
    def test_distinct_vpns_get_distinct_frames(self, vpns):
        manager = PageTableManager()
        frames = [manager.map_page(1, vpn) for vpn in vpns]
        assert len(set(frames)) == len(frames)
        for vpn, ppn in zip(vpns, frames):
            result = manager.walk(1, vpn)
            assert result.ppn == ppn
            assert result.levels_touched == 4

    @given(
        vpns=st.lists(st.integers(0, 1023), unique=True, min_size=1, max_size=50),
        probe=st.integers(0, 1023),
    )
    @settings(max_examples=40, deadline=None)
    def test_walk_never_hits_unmapped(self, vpns, probe):
        manager = PageTableManager()
        for vpn in vpns:
            manager.map_page(1, vpn)
        result = manager.walk(1, probe)
        assert result.hit == (probe in vpns)


class TestReuseDistanceProperties:
    @given(stream=st.lists(st.integers(0, 15), max_size=150))
    @settings(max_examples=60, deadline=None)
    def test_matches_naive_set_count(self, stream):
        keyed = [(1, v) for v in stream]
        fast = reuse_distances(keyed)
        last: dict[int, int] = {}
        for i, v in enumerate(stream):
            if v in last:
                expected = len(set(stream[last[v] + 1 : i]))
                assert fast[i] == expected
            else:
                assert fast[i] == COLD
            last[v] = i

    @given(stream=st.lists(st.integers(0, 15), max_size=150))
    @settings(max_examples=40, deadline=None)
    def test_distances_bounded_by_alphabet(self, stream):
        fast = reuse_distances([(1, v) for v in stream])
        finite = fast[fast >= 0]
        if len(finite):
            assert finite.max() < 16
