"""Property-based tests for the workload builders."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.presets import baseline_config, scaled_config
from repro.workloads.applications import APPLICATIONS
from repro.workloads.multi_app import (
    MULTI_APP_WORKLOADS,
    build_alone_workload,
    build_multi_app_workload,
    build_single_app_workload,
)

app_st = st.sampled_from(sorted(APPLICATIONS))
scale_st = st.floats(0.01, 0.3)


@given(app=app_st, scale=scale_st, seed=st.integers(1, 50))
@settings(max_examples=30, deadline=None)
def test_single_app_builder_invariants(app, scale, seed):
    config = baseline_config()
    workload = build_single_app_workload(app, config, scale=scale, seed=seed)
    # One PID spanning every GPU, every CU assigned exactly once per GPU.
    assert workload.pids == [1]
    assert workload.gpus_for(1) == list(range(config.num_gpus))
    for placement in workload.placements:
        assert sorted(placement.cu_ids) == list(range(config.gpu.num_cus))
    # Accounting identities.
    assert 0 < workload.measured_runs_for(1) <= workload.runs_for(1)
    assert workload.measured_instructions_for(1) <= workload.instructions_for(1)
    assert workload.accesses_for(1) >= workload.runs_for(1)
    # Every traced page is pre-faultable.
    footprint = set(workload.footprints[1].tolist())
    for placement in workload.placements:
        for stream in placement.streams:
            assert set(stream.vpns.tolist()) <= footprint


@given(
    workload_name=st.sampled_from(sorted(MULTI_APP_WORKLOADS)),
    scale=scale_st,
    seed=st.integers(1, 20),
)
@settings(max_examples=20, deadline=None)
def test_multi_app_builder_invariants(workload_name, scale, seed):
    config = baseline_config()
    workload = build_multi_app_workload(workload_name, config, scale=scale, seed=seed)
    apps, _ = MULTI_APP_WORKLOADS[workload_name]
    assert [workload.app_names[p] for p in workload.pids] == list(apps)
    # One application per GPU, footprints per PID cover the traces.
    for pid in workload.pids:
        assert workload.gpus_for(pid) == [pid - 1]
        footprint = set(workload.footprints[pid].tolist())
        for placement in workload.placements:
            if placement.pid != pid:
                continue
            for stream in placement.streams:
                assert set(stream.vpns.tolist()) <= footprint


@given(app=app_st, scale=scale_st)
@settings(max_examples=20, deadline=None)
def test_alone_builder_smaller_than_spanned(app, scale):
    config = baseline_config()
    alone = build_alone_workload(app, config, scale=scale)
    spread = build_single_app_workload(app, config, scale=scale)
    assert alone.runs_for(1) <= spread.runs_for(1)
    assert alone.gpus_for(1) == [0]


@given(app=app_st, num_gpus=st.sampled_from([2, 4, 8, 16]), seed=st.integers(1, 10))
@settings(max_examples=20, deadline=None)
def test_builders_respect_gpu_count(app, num_gpus, seed):
    config = scaled_config(num_gpus)
    workload = build_single_app_workload(app, config, scale=0.05, seed=seed)
    assert len(workload.placements) == num_gpus


@given(app=app_st, scale=scale_st, seed=st.integers(1, 20))
@settings(max_examples=20, deadline=None)
def test_builder_is_deterministic(app, scale, seed):
    config = baseline_config()
    a = build_single_app_workload(app, config, scale=scale, seed=seed)
    b = build_single_app_workload(app, config, scale=scale, seed=seed)
    for pa, pb in zip(a.placements, b.placements):
        for sa, sb in zip(pa.streams, pb.streams):
            assert (sa.vpns == sb.vpns).all()
            assert (sa.gaps == sb.gaps).all()
