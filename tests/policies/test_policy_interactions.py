"""Cross-policy interaction tests: behaviours that only show when several
protocol features meet on the same translation."""

import numpy as np

from repro.sim.system import MultiGPUSystem
from repro.workloads.trace import CUStream, Placement, Workload


def workload(gpu_streams, kind="single"):
    placements = []
    pages = set()
    for gpu_id, vpns in gpu_streams.items():
        n = len(vpns)
        placements.append(
            Placement(
                gpu_id=gpu_id, pid=1, app_name="x", cu_ids=[0],
                streams=[CUStream(
                    np.array(vpns, dtype=np.int64),
                    np.full(n, 5000, dtype=np.int64),
                    np.ones(n, dtype=np.int64),
                )],
            )
        )
        pages.update(vpns)
    return Workload(name="x", kind=kind, placements=placements,
                    app_names={1: "x"},
                    footprints={1: np.array(sorted(pages), dtype=np.int64)})


class TestMoveThenVictimCycle:
    def test_entry_survives_full_circulation(self, tiny_config):
        """A translation can circulate L2 -> IOMMU (victim) -> another L2
        (move) -> IOMMU (victim again) without loss or duplication."""
        # GPU0 touches page 7 then floods its 32-entry L2 so 7 becomes an
        # IOMMU-resident victim; GPU1 then requests 7 (move), floods, and
        # GPU2 requests 7 again.
        flood0 = list(range(100, 140))
        flood1 = list(range(200, 240))
        system = MultiGPUSystem(
            tiny_config,
            workload({0: [7] + flood0, 1: [99] + [7] + flood1, 2: [98, 98, 7]}),
            "least-tlb",
        )
        result = system.run()
        assert result.apps[1].counters["runs"] == len(flood0) + len(flood1) + 6
        # Page 7 is resident somewhere exactly... at least once, and the
        # total number of page-7 walks stayed minimal (first touch, plus
        # at most racing walks that lost).
        holders = [
            gpu.gpu_id for gpu in system.gpus if gpu.l2_tlb.contains(1, 7)
        ]
        in_iommu = system.iommu.tlb.contains(1, 7)
        assert holders or in_iommu

    def test_tracker_consistent_after_circulation(self, tiny_config):
        flood0 = list(range(100, 140))
        system = MultiGPUSystem(
            tiny_config,
            workload({0: [7] + flood0, 1: [99, 7]}),
            "least-tlb",
        )
        system.run()
        tracker = system.policy.tracker
        for gpu in system.gpus:
            assert (gpu.gpu_id in tracker.query(1, 7)) == gpu.l2_tlb.contains(1, 7)


class TestSpillThenShare:
    def test_spilled_entry_found_by_owner(self, tiny_config):
        """Multi-app mode: an entry spilled into a peer's L2 must be
        retrievable by its original owner through the tracker."""
        from repro.structures.tlb import TLBEntry

        system = MultiGPUSystem(
            tiny_config, workload({0: [1]}, kind="multi"), "least-tlb"
        )
        system.run()
        # Manufacture a spill of page 50 into some receiver.
        system.policy.on_iommu_tlb_evicted(
            TLBEntry(1, 50, 1050, spill_budget=1, owner_gpu=0)
        )
        system.queue.run()
        receivers = [g for g in system.gpus if g.l2_tlb.contains(1, 50)]
        assert len(receivers) == 1
        # The tracker knows where it went.
        assert system.policy.tracker.query(1, 50) == [receivers[0].gpu_id]


class TestProbingWithSharedFootprint:
    def test_ring_probe_copies_do_not_multiply_walks(self, tiny_config):
        # All four GPUs sweep the same pages staggered: ring probing can
        # serve neighbours, and total walks stay below one-per-GPU-per-page.
        pages = list(range(10))
        system = MultiGPUSystem(
            tiny_config,
            workload({g: [90 + g] * (g + 1) + pages for g in range(4)}),
            "tlb-probing",
        )
        system.run()
        walks = system.iommu.walkers.stats["walks_dispatched"]
        assert walks < 4 * len(pages) + 4
        assert system.iommu.stats.as_dict().get("ring_probe_hits", 0) > 0
