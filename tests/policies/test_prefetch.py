"""Unit tests for the sequential-prefetch comparison policy."""

import numpy as np
import pytest

from repro.sim.system import MultiGPUSystem
from repro.workloads.trace import CUStream, Placement, Workload


def workload(vpns, gap=5000, footprint=None):
    n = len(vpns)
    placement = Placement(
        gpu_id=0, pid=1, app_name="x", cu_ids=[0],
        streams=[CUStream(
            np.array(vpns, dtype=np.int64),
            np.full(n, gap, dtype=np.int64),
            np.ones(n, dtype=np.int64),
        )],
    )
    pages = footprint if footprint is not None else sorted(set(vpns) | {v + 1 for v in vpns})
    return Workload(name="x", kind="multi", placements=[placement],
                    app_names={1: "x"},
                    footprints={1: np.array(sorted(pages), dtype=np.int64)})


def test_prefetch_fills_next_page(tiny_config):
    system = MultiGPUSystem(tiny_config, workload([10]), "prefetch")
    system.run()
    gpu = system.gpus[0]
    assert gpu.l2_tlb.contains(1, 10)
    assert gpu.l2_tlb.contains(1, 11)  # prefetched
    assert system.iommu.stats["prefetches_issued"] == 1


def test_prefetched_access_hits_locally(tiny_config):
    # Sequential sweep: after the first miss, every next page is prefetched
    # ahead of its demand access.
    vpns = list(range(20, 30))
    system = MultiGPUSystem(tiny_config, workload(vpns), "prefetch")
    result = system.run()
    base = MultiGPUSystem(tiny_config, workload(vpns), "baseline").run()
    assert (
        result.apps[1].counters["l2_miss"] < base.apps[1].counters["l2_miss"]
    )


def test_prefetches_never_counted_in_stats(tiny_config):
    system = MultiGPUSystem(tiny_config, workload([10]), "prefetch")
    result = system.run()
    # Only the demand access appears in per-application IOMMU stats.
    assert result.apps[1].counters["iommu_lookup"] == 1


def test_degree_configurable(tiny_config):
    system = MultiGPUSystem(
        tiny_config,
        workload([10], footprint=list(range(10, 15))),
        "prefetch",
        policy_options={"degree": 3},
    )
    system.run()
    gpu = system.gpus[0]
    assert all(gpu.l2_tlb.contains(1, 10 + k) for k in range(4))


def test_invalid_degree(tiny_config):
    with pytest.raises(ValueError, match="degree"):
        MultiGPUSystem(
            tiny_config, workload([10]), "prefetch", policy_options={"degree": 0}
        )


def test_prefetch_respects_footprint_bound(tiny_config):
    # Page 10 is the last page of the footprint: nothing beyond it exists,
    # so no prefetch is issued (no spurious page faults).
    system = MultiGPUSystem(
        tiny_config, workload([10], footprint=[10]), "prefetch"
    )
    system.run()
    assert system.iommu.stats.as_dict().get("prefetches_issued", 0) == 0


def test_no_duplicate_prefetch_for_resident_page(tiny_config):
    system = MultiGPUSystem(tiny_config, workload([10, 12, 10, 12]), "prefetch")
    system.run()
    # 10 -> prefetch 11; 12 -> prefetch 13; revisits hit locally.
    assert system.iommu.stats["prefetches_issued"] == 2
