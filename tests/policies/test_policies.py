"""Unit tests for the baseline and comparison policies."""

import numpy as np
import pytest

from repro.policies import make_policy, policy_names
from repro.sim.system import MultiGPUSystem
from repro.workloads.trace import CUStream, Placement, Workload


def stream(vpns, gap=5000):
    n = len(vpns)
    return CUStream(
        vpns=np.array(vpns, dtype=np.int64),
        gaps=np.full(n, gap, dtype=np.int64),
        repeats=np.ones(n, dtype=np.int64),
    )


def workload_on(gpu_streams, kind="single"):
    placements = []
    footprint = set()
    for gpu_id, vpns in gpu_streams.items():
        placements.append(
            Placement(gpu_id=gpu_id, pid=1, app_name="app", cu_ids=[0],
                      streams=[stream(vpns)])
        )
        footprint.update(vpns)
    return Workload(
        name="unit", kind=kind, placements=placements, app_names={1: "app"},
        footprints={1: np.array(sorted(footprint), dtype=np.int64)},
    )


class TestRegistry:
    def test_known_names(self):
        names = policy_names()
        for name in ("baseline", "mostly-inclusive", "strictly-inclusive",
                     "exclusive", "tlb-probing", "least-tlb"):
            assert name in names

    def test_unknown_name(self, tiny_config):
        system = MultiGPUSystem(tiny_config, workload_on({0: [1]}), "baseline")
        with pytest.raises(ValueError, match="unknown policy"):
            make_policy("nope", system)


class TestMostlyInclusive:
    def test_walk_fills_iommu_and_l2(self, tiny_config):
        system = MultiGPUSystem(tiny_config, workload_on({0: [5]}), "baseline")
        system.run()
        assert system.iommu.tlb.contains(1, 5)
        assert system.gpus[0].l2_tlb.contains(1, 5)

    def test_iommu_hit_leaves_entry_in_place(self, tiny_config):
        system = MultiGPUSystem(tiny_config, workload_on({0: [5], 1: [99, 5]}), "baseline")
        system.run()
        # GPU1's later access hits the IOMMU TLB; the entry stays there
        # (duplicated in both L2s and the IOMMU — Observation 3).
        assert system.iommu.tlb.contains(1, 5)
        assert system.gpus[0].l2_tlb.contains(1, 5)
        assert system.gpus[1].l2_tlb.contains(1, 5)
        assert system.iommu.stats["tlb_hit"] == 1

    def test_l2_eviction_is_silent(self, tiny_config):
        vpns = list(range(40))  # overflow the 32-entry L2
        system = MultiGPUSystem(tiny_config, workload_on({0: vpns}), "baseline")
        system.run()
        # All 40 translations remain in the IOMMU TLB despite L2 evictions.
        assert len(system.iommu.tlb) == 40

    def test_request_dedup_across_gpus(self, tiny_config):
        system = MultiGPUSystem(
            tiny_config, workload_on({0: [5], 1: [5], 2: [5]}), "baseline"
        )
        result = system.run()
        # Concurrent identical requests merge into one walk.
        assert system.iommu.walkers.stats["walks_dispatched"] == 1
        assert result.apps[1].counters["runs"] == 3


class TestStrictlyInclusive:
    def test_iommu_eviction_back_invalidates(self, tiny_config):
        # Overflow one IOMMU TLB set so an eviction occurs while the victim
        # is still resident in the GPU's L2.
        sets = tiny_config.iommu.tlb.num_entries // tiny_config.iommu.tlb.associativity
        ways = tiny_config.iommu.tlb.associativity
        vpns = [i * sets for i in range(ways + 1)]  # all map to set 0
        system = MultiGPUSystem(tiny_config, workload_on({0: vpns}), "strictly-inclusive")
        system.run()
        assert system.iommu.stats["back_invalidations"] >= 1
        # Inclusion invariant: nothing in an L2 that is not in the IOMMU TLB.
        iommu_keys = system.iommu.tlb.resident_keys()
        for gpu in system.gpus:
            assert gpu.l2_tlb.resident_keys() <= iommu_keys


class TestExclusive:
    def test_walk_fill_skips_iommu(self, tiny_config):
        system = MultiGPUSystem(tiny_config, workload_on({0: [5]}), "exclusive")
        system.run()
        assert not system.iommu.tlb.contains(1, 5)
        assert system.gpus[0].l2_tlb.contains(1, 5)

    def test_victims_enter_iommu_and_hits_move_out(self, tiny_config):
        vpns = list(range(33))
        system = MultiGPUSystem(tiny_config, workload_on({0: vpns}), "exclusive")
        system.run()
        assert len(system.iommu.tlb) == 1
        (victim,) = list(system.iommu.tlb.iter_entries())
        follow = MultiGPUSystem(
            tiny_config, workload_on({0: vpns, 1: [victim.vpn]}), "exclusive"
        )
        follow.run()
        assert follow.gpus[1].l2_tlb.contains(1, victim.vpn)

    def test_no_remote_sharing_without_tracker(self, tiny_config):
        # Page 7 lives only in GPU0's L2: exclusive pays a walk for GPU1.
        system = MultiGPUSystem(
            tiny_config, workload_on({0: [7], 1: [99, 7]}), "exclusive"
        )
        system.run()
        assert system.iommu.stats.as_dict().get("remote_hits", 0) == 0
        assert system.iommu.walkers.stats["walks_dispatched"] == 3  # 7, 99, 7


class TestTLBProbing:
    def test_probe_hit_avoids_iommu(self, tiny_config):
        # GPU0 (ring neighbour of GPU1) holds page 7; GPU1's miss probes it.
        system = MultiGPUSystem(
            tiny_config, workload_on({0: [7], 1: [99, 7]}), "tlb-probing"
        )
        result = system.run()
        assert system.iommu.stats["ring_probe_hits"] == 1
        # The probed request never reached the IOMMU.
        assert result.apps[1].counters["iommu_lookup"] == 2  # 7(GPU0), 99

    def test_probe_miss_falls_back_to_iommu(self, tiny_config):
        system = MultiGPUSystem(tiny_config, workload_on({0: [5]}), "tlb-probing")
        result = system.run()
        assert system.iommu.stats["ring_probes"] == 2
        assert system.iommu.stats.as_dict().get("ring_probe_hits", 0) == 0
        assert result.apps[1].counters["served_walk"] == 1

    def test_probing_adds_latency_on_miss(self, tiny_config):
        probing = MultiGPUSystem(tiny_config, workload_on({0: [5]}), "tlb-probing")
        base = MultiGPUSystem(tiny_config, workload_on({0: [5]}), "baseline")
        r_probing = probing.run()
        r_base = base.run()
        assert (
            r_probing.apps[1].mean_translation_latency
            > r_base.apps[1].mean_translation_latency
        )

    def test_distant_gpu_not_probed(self, tiny_config):
        # GPU2 is not a ring neighbour of GPU0 in a 4-GPU ring: GPU0's miss
        # cannot be served by GPU2's copy.
        system = MultiGPUSystem(
            tiny_config, workload_on({2: [7], 0: [99, 7]}), "tlb-probing"
        )
        system.run()
        assert system.iommu.stats.as_dict().get("ring_probe_hits", 0) == 0
