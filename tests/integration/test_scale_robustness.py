"""Robustness of headline conclusions to trace length and seed.

A reproduction whose conclusions flip with the random seed is not a
reproduction.  These tests re-run the cheapest headline comparison under
several seeds and scales and require the *direction* to hold every time.
"""

import pytest

from repro.config.presets import baseline_config
from repro.sim.driver import run_single_app

pytestmark = pytest.mark.slow


@pytest.mark.parametrize("seed", [1, 7, 23])
def test_km_least_tlb_wins_for_every_seed(seed):
    config = baseline_config(seed=seed)
    base = run_single_app("KM", config, "baseline", scale=0.25, seed=seed)
    least = run_single_app("KM", config, "least-tlb", scale=0.25, seed=seed)
    assert least.speedup_vs(base) > 1.1, seed


@pytest.mark.parametrize("scale", [0.25, 0.5])
def test_km_gain_direction_stable_across_scales(scale):
    base = run_single_app("KM", policy="baseline", scale=scale)
    least = run_single_app("KM", policy="least-tlb", scale=scale)
    assert least.speedup_vs(base) > 1.1, scale


@pytest.mark.parametrize("seed", [1, 7])
def test_low_mpki_app_never_hurt_for_any_seed(seed):
    config = baseline_config(seed=seed)
    base = run_single_app("AES", config, "baseline", scale=0.25, seed=seed)
    least = run_single_app("AES", config, "least-tlb", scale=0.25, seed=seed)
    assert least.speedup_vs(base) > 0.98, seed
