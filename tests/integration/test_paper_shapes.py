"""Integration tests asserting the paper's qualitative result shapes.

These run real (scaled-down) workloads end to end and check the
*directions* the paper reports: who wins, who is unharmed, and how the
variants order.  Absolute magnitudes are asserted loosely — the substrate
is a simulator, not the authors' testbed — and the full-size numbers live
in the benchmark harness.
"""

import pytest

from repro.config.presets import (
    dws_config,
    infinite_iommu_config,
    large_page_config,
    local_page_table_config,
    scaled_config,
)
from repro.sim.driver import run_multi_app, run_single_app

SCALE = 0.25

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def mm_results():
    base = run_single_app("MM", policy="baseline", scale=SCALE)
    least = run_single_app("MM", policy="least-tlb", scale=SCALE)
    infinite = run_single_app("MM", infinite_iommu_config(), policy="baseline", scale=SCALE)
    return base, least, infinite


class TestSingleAppShapes:
    def test_least_tlb_speeds_up_medium_mpki_app(self, mm_results):
        base, least, _ = mm_results
        assert least.speedup_vs(base) > 1.05

    def test_infinite_iommu_upper_bounds_least(self, mm_results):
        base, least, infinite = mm_results
        assert infinite.speedup_vs(base) >= least.speedup_vs(base) * 0.98

    def test_least_tlb_produces_remote_hits(self, mm_results):
        _, least, _ = mm_results
        assert least.apps[1].remote_hit_rate > 0.01

    def test_low_mpki_app_unharmed(self):
        base = run_single_app("FIR", policy="baseline", scale=SCALE)
        least = run_single_app("FIR", policy="least-tlb", scale=SCALE)
        # "least-TLB does not hurt the application performance that is
        # already good in the baseline execution" (Section 5.1).
        assert least.speedup_vs(base) > 0.97

    def test_high_mpki_app_is_walker_bound_in_baseline(self):
        base = run_single_app("ST", policy="baseline", scale=SCALE)
        assert base.walker_queue_wait_mean > 500

    def test_least_tlb_beats_probing(self):
        least = run_single_app("MM", policy="least-tlb", scale=SCALE)
        probing = run_single_app("MM", policy="tlb-probing", scale=SCALE)
        assert least.exec_cycles <= probing.exec_cycles

    def test_mpki_classes_of_representatives(self):
        """Table 3's L/M/H classes must reproduce in simulation."""
        for app, expected in (("FIR", "L"), ("KM", "M"), ("MT", "H")):
            result = run_single_app(app, policy="baseline", scale=SCALE)
            mpki = result.apps[1].mpki
            if expected == "L":
                assert mpki < 0.1, app
            elif expected == "M":
                assert 0.1 <= mpki < 1.0, app
            else:
                assert mpki >= 1.0, app


class TestMultiAppShapes:
    def test_contended_mix_improves(self):
        base = run_multi_app("W8", policy="baseline", scale=SCALE)
        least = run_multi_app("W8", policy="least-tlb", scale=SCALE)
        speedups = least.per_app_speedup_vs(base)
        assert sum(speedups.values()) / 4 > 1.05

    def test_all_low_mix_is_neutral(self):
        base = run_multi_app("W1", policy="baseline", scale=SCALE)
        least = run_multi_app("W1", policy="least-tlb", scale=SCALE)
        for speedup in least.per_app_speedup_vs(base).values():
            assert speedup > 0.97

    def test_spilling_happens_under_contention(self):
        least = run_multi_app("W8", policy="least-tlb", scale=SCALE)
        assert least.iommu_counters.get("spills", 0) > 0
        assert least.iommu_counters.get("spilled_discarded", 0) > 0

    def test_dws_composes_with_least_tlb(self):
        base = run_multi_app("W9", policy="baseline", scale=SCALE)
        least = run_multi_app("W9", policy="least-tlb", scale=SCALE)
        combo = run_multi_app("W9", dws_config(), policy="least-tlb", scale=SCALE)
        assert combo.walker_counters.get("walks_stolen", 0) > 0

        def mean_speedup(result):
            speedups = result.per_app_speedup_vs(base)
            return sum(speedups.values()) / len(speedups)

        # Walker fairness lifts the average application speedup beyond
        # least-TLB alone (Section 5.6's combined result).
        assert mean_speedup(combo) > mean_speedup(least)


class TestVariants:
    def test_large_pages_shrink_translation_traffic(self):
        small = run_single_app("MM", policy="baseline", scale=SCALE)
        large = run_single_app("MM", large_page_config(), policy="baseline", scale=SCALE)
        assert (
            large.apps[1].counters["iommu_lookup"]
            < small.apps[1].counters["iommu_lookup"] / 4
        )
        # With 2 MB pages the TLBs cover the footprint: near-ideal hit rates.
        assert large.apps[1].l2_hit_rate > 0.9

    def test_local_page_tables_divert_traffic_from_iommu(self):
        shared = run_single_app("MM", policy="baseline", scale=SCALE)
        local = run_single_app(
            "MM", local_page_table_config(), policy="baseline", scale=SCALE
        )
        c = local.apps[1].counters
        assert c["local_walks"] > 0
        # Only local page faults escalate to the IOMMU (Section 5.3), so
        # IOMMU traffic is exactly the fault count and strictly below the
        # local walk count.
        assert c["iommu_lookup"] == c["local_faults"]
        assert c["iommu_lookup"] < c["local_walks"]
        assert c["iommu_lookup"] < shared.apps[1].counters["iommu_lookup"]

    def test_eight_gpu_system_runs_and_improves(self):
        # Longer traces than the other tests: with eight GPUs the per-GPU
        # trace slice halves, and too-short slices are cold-miss dominated.
        config = scaled_config(8)
        base = run_single_app("MM", config, policy="baseline", scale=0.5)
        least = run_single_app("MM", config, policy="least-tlb", scale=0.5)
        assert len(base.apps[1].gpu_ids) == 8
        assert least.speedup_vs(base) > 1.0
