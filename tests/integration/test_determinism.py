"""Hash-seed determinism regression (the staticcheck D1 fixes).

Python randomises ``hash()`` per interpreter, so set iteration order
differs between processes.  The two places where a set used to feed
result construction — TLB snapshot capture and the sharing-degree
metric — now iterate ``sorted(...)``; this test re-runs one workload in
two fresh interpreters under *different* ``PYTHONHASHSEED`` values and
asserts the full result payload (counters, ``events_executed``,
snapshots, sharing degrees) is bit-identical.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]

_RUN = """
import json

from repro.config.presets import baseline_config
from repro.metrics.sharing import sharing_degrees
from repro.reporting.export import result_to_dict
from repro.sim.driver import run_single_app
from repro.workloads.multi_app import build_single_app_workload

config = baseline_config()
result = run_single_app(
    "MM", config, policy="least-tlb", scale=0.2, snapshot_interval=20_000
)
assert result.snapshots, "no snapshots captured; the test lost its teeth"
payload = {
    "result": result_to_dict(result),
    "sharing": sharing_degrees(build_single_app_workload("MM", config, scale=0.2)),
}
print(json.dumps(payload, sort_keys=True))
"""


def _run_with_hash_seed(seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    env["PYTHONPATH"] = str(REPO / "src")
    proc = subprocess.run(
        [sys.executable, "-c", _RUN],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO,
        check=True,
    )
    return proc.stdout


def test_results_identical_across_hash_seeds():
    first = _run_with_hash_seed("1")
    second = _run_with_hash_seed("31337")
    assert json.loads(first)  # both are valid, non-empty payloads
    assert first == second


def test_same_seed_identical_different_seed_diverges():
    from repro.reporting.export import result_to_dict
    from repro.sim.driver import run_single_app

    kwargs = dict(policy="least-tlb", scale=0.2)
    first = result_to_dict(run_single_app("MM", seed=1, **kwargs))
    repeat = result_to_dict(run_single_app("MM", seed=1, **kwargs))
    other = result_to_dict(run_single_app("MM", seed=2, **kwargs))
    assert first == repeat
    assert first != other  # a different workload seed must actually change the run
