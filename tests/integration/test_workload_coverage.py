"""Integration coverage for every workload family the paper evaluates."""

import pytest

from repro.config.presets import baseline_config, scaled_config
from repro.sim.driver import run_mix, run_multi_app, run_single_app
from repro.workloads.multi_app import (
    MIX_WORKLOADS,
    MULTI_APP_WORKLOADS,
    SCALED_WORKLOADS,
)

SCALE = 0.08

pytestmark = pytest.mark.slow


@pytest.mark.parametrize("workload", sorted(MULTI_APP_WORKLOADS))
def test_every_table4_workload_runs(workload):
    result = run_multi_app(workload, policy="least-tlb", scale=SCALE)
    assert len(result.apps) == 4
    for app in result.apps.values():
        assert app.exec_cycles > 0
        assert app.counters["runs"] > 0


@pytest.mark.parametrize("workload", ["W11", "W12", "W13", "W14", "W15"])
def test_every_8gpu_workload_runs(workload):
    result = run_multi_app(workload, scaled_config(8), "least-tlb", scale=SCALE)
    assert len(result.apps) == 8


def test_16gpu_workload_runs():
    result = run_multi_app("W16", scaled_config(16), "least-tlb", scale=SCALE)
    assert len(result.apps) == 16
    assert SCALED_WORKLOADS["W16"][0][0] == result.apps[1].app_name


@pytest.mark.parametrize("workload", sorted(MIX_WORKLOADS))
def test_every_mix_workload_runs(workload):
    result = run_mix(workload, policy="least-tlb", scale=SCALE)
    assert len(result.apps) == 6
    # Two applications on each busy GPU share its 64 CUs evenly.
    for app in result.apps.values():
        assert app.counters["runs"] > 0


@pytest.mark.parametrize("policy", ["baseline", "least-tlb", "tlb-probing",
                                    "exclusive", "strictly-inclusive",
                                    "prefetch", "least-tlb-qos"])
def test_every_policy_runs_every_paradigm(policy):
    single = run_single_app("MM", baseline_config(), policy, scale=SCALE)
    assert single.apps[1].counters["runs"] > 0
    multi = run_multi_app("W2", baseline_config(), policy, scale=SCALE)
    assert all(a.counters["runs"] > 0 for a in multi.apps.values())
