"""Cross-cutting accounting invariants over full simulations.

These tie the per-application counters together: every L2 miss must be
accounted for by exactly one of the serving paths, and the per-level
counts must compose (L1 misses ≥ L2 lookups ≥ IOMMU lookups, etc.).
"""

import pytest

from repro.config.presets import baseline_config
from repro.sim.driver import run_multi_app, run_single_app

SCALE = 0.15

pytestmark = pytest.mark.slow

POLICIES = ("baseline", "least-tlb", "exclusive", "tlb-probing")


@pytest.mark.parametrize("policy", POLICIES)
def test_levels_compose(policy):
    result = run_single_app("MM", baseline_config(), policy, scale=SCALE)
    c = result.apps[1].counters
    l2_lookups = c.get("l2_hit", 0) + c.get("l2_miss", 0)
    # Every L2 lookup came from an L1 miss.
    assert l2_lookups <= c["l1_miss"]
    # Every IOMMU lookup came from an L2 miss (MSHR merges and, for
    # tlb-probing, ring-probe hits absorb the rest).
    assert c["iommu_lookup"] <= c["l2_miss"]
    # Hits and misses partition lookups.
    assert c.get("iommu_hit", 0) + c.get("iommu_miss", 0) == c["iommu_lookup"]


@pytest.mark.parametrize("policy", POLICIES)
def test_every_translation_served_exactly_once(policy):
    result = run_single_app("MM", baseline_config(), policy, scale=SCALE)
    c = result.apps[1].counters
    served = (
        c.get("served_iommu", 0)
        + c.get("served_walk", 0)
        + c.get("served_remote", 0)
        + c.get("served_pending", 0)
    )
    # Requests that reached the IOMMU are answered exactly once each.
    # (tlb-probing requests served by a ring probe never reach the IOMMU.)
    assert served == c["iommu_lookup"]


def test_walk_counts_consistent_with_walker_pool():
    result = run_single_app("MM", baseline_config(), "baseline", scale=SCALE)
    # Per-app walk requests (measured only) cannot exceed pool dispatches
    # (which include warmup traffic).
    assert result.apps[1].counters["walks"] <= result.walker_counters["walks_requested"]
    dispatched = result.walker_counters["walks_dispatched"]
    cancelled = result.walker_counters.get("walks_cancelled", 0)
    assert dispatched + cancelled == result.walker_counters["walks_requested"]


def test_least_tlb_cancellations_bounded_by_remote_hits():
    result = run_single_app("PR", baseline_config(), "least-tlb", scale=SCALE)
    cancelled = result.walker_counters.get("walks_cancelled", 0)
    wasted = result.iommu_counters.get("walks_wasted", 0)
    remote = result.iommu_counters.get("remote_hits", 0)
    # A racing walk is cancelled or wasted only when the remote side won.
    assert cancelled + wasted <= remote


def test_multi_app_counters_are_disjoint_per_pid():
    result = run_multi_app("W2", baseline_config(), "baseline", scale=SCALE)
    iommu_total = result.iommu_counters["requests"]
    per_app_total = sum(a.counters.get("iommu_lookup", 0) for a in result.apps.values())
    # Per-app (measured) lookups can never exceed total IOMMU requests
    # (the remainder is warmup and re-execution traffic).
    assert per_app_total <= iommu_total


def test_remote_hits_never_exceed_tracker_positives():
    result = run_single_app("PR", baseline_config(), "least-tlb", scale=SCALE)
    stats = result.tracker_stats
    assert stats["remote_hits"] <= stats["positives"]
    assert stats["false_positives"] <= stats["positives"]
