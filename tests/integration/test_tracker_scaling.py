"""Probing EXPERIMENTS.md deviation #2: the 16-GPU tracker budget.

With the paper's fixed 2048-entry tracker split 16 ways, each partition
(128 slots) tracks a 512-entry L2 TLB at 4x over-subscription — tracking
quality collapses and one application regresses in our Figure 21 run.
Scaling the budget to 512 entries per GPU restores it.  This test pins
both halves of that explanation.
"""

import pytest

from repro.config.presets import scaled_config
from repro.sim.driver import run_single_app

pytestmark = pytest.mark.slow

APP = "MM"
SCALE = 0.5


def test_scaled_tracker_repairs_16gpu_regression():
    fixed_budget = scaled_config(16)
    grown_budget = scaled_config(16, scale_tracker=True)
    assert grown_budget.tracker.total_entries == 512 * 16

    base = run_single_app(APP, fixed_budget, "baseline", scale=SCALE)
    least_fixed = run_single_app(APP, fixed_budget, "least-tlb", scale=SCALE)
    least_grown = run_single_app(APP, grown_budget, "least-tlb", scale=SCALE)

    speedup_fixed = least_fixed.speedup_vs(base)
    speedup_grown = least_grown.speedup_vs(base)
    # A proportionally provisioned tracker performs at least as well...
    assert speedup_grown >= speedup_fixed
    # ...and makes fewer mispredictions per query.
    def fp_rate(result):
        stats = result.tracker_stats
        return stats["false_positives"] / max(1, stats["queries"])

    assert fp_rate(least_grown) <= fp_rate(least_fixed)


def test_four_gpu_budget_unchanged_by_flag():
    assert (
        scaled_config(4, scale_tracker=True).tracker.total_entries
        == scaled_config(4).tracker.total_entries
    )
