"""Figure 11's motivating observation, as a test.

"For those applications with higher L2 TLB thrashing, more translations
are kept in the IOMMU TLB" — the observation that justifies using
Eviction Counters to find the least-thrashed spill receiver.
"""

import pytest

from repro.config.presets import baseline_config
from repro.metrics.sharing import iommu_composition
from repro.sim.driver import run_multi_app
from repro.workloads.multi_app import MULTI_APP_WORKLOADS

pytestmark = pytest.mark.slow


def test_high_mpki_apps_dominate_iommu_contents():
    # W4 = FFT, SC, KM, MT (LLMH): MT's thrashing should own most of the
    # IOMMU TLB, the two L apps almost none of it.
    result = run_multi_app(
        "W4", baseline_config(), "least-tlb", scale=0.2, snapshot_interval=20_000
    )
    assert len(result.snapshots) >= 3
    shares = iommu_composition(result.snapshots)
    apps = MULTI_APP_WORKLOADS["W4"][0]
    by_app = dict(zip(apps, shares))
    assert by_app["MT"] > by_app["FFT"]
    assert by_app["MT"] > by_app["SC"]
    assert by_app["KM"] > by_app["FFT"]
    # The H app owns a plurality of the shared capacity.
    assert by_app["MT"] == max(by_app.values())


def test_composition_shares_sum_to_at_most_one():
    result = run_multi_app(
        "W8", baseline_config(), "least-tlb", scale=0.15, snapshot_interval=20_000
    )
    shares = iommu_composition(result.snapshots)
    assert 0.0 < sum(shares) <= 1.0 + 1e-9
