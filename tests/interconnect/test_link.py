"""Unit tests for links and topology."""

import pytest

from repro.config.system import InterconnectConfig
from repro.interconnect.link import Link
from repro.interconnect.topology import Topology


class TestLink:
    def test_latency_applied(self):
        link = Link("l", latency=100, bandwidth=1.0)
        assert link.send(0) == 100

    def test_serialization_queues_messages(self):
        link = Link("l", latency=100, bandwidth=0.5)  # 2 cycles/message
        arrivals = [link.send(0) for _ in range(3)]
        assert arrivals == [100, 102, 104]
        assert link.queueing.max == 4

    def test_idle_link_resets_serialization(self):
        link = Link("l", latency=10, bandwidth=0.5)
        link.send(0)
        assert link.send(100) == 110  # no backlog after idleness

    def test_traffic_counted(self):
        link = Link("l", latency=1)
        for t in range(5):
            link.send(t)
        assert link.traffic == 5

    def test_reset(self):
        link = Link("l", latency=1, bandwidth=0.5)
        link.send(0)
        link.reset()
        assert link.traffic == 0
        assert link.send(0) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            Link("l", latency=-1)
        with pytest.raises(ValueError):
            Link("l", latency=1, bandwidth=0)


class TestTopology:
    def make(self, num_gpus=4, **kwargs):
        return Topology(num_gpus, InterconnectConfig(**kwargs))

    def test_host_links_use_host_latency(self):
        topo = self.make(host_link_latency=300)
        assert topo.gpu_to_iommu(0, 0) == 300
        assert topo.iommu_to_gpu(3, 0) == 300

    def test_peer_links_use_peer_latency(self):
        topo = self.make(peer_link_latency=100)
        assert topo.gpu_to_gpu(0, 1, 0) == 100
        assert topo.probe_to_gpu(2, 0) == 100

    def test_self_send_is_free(self):
        topo = self.make()
        assert topo.gpu_to_gpu(2, 2, 50) == 50

    def test_remote_latency_scale(self):
        topo = self.make(peer_link_latency=100, remote_latency_scale=3.5)
        assert topo.probe_to_gpu(0, 0) == 350
        # Host latency is NOT scaled (Figure 20 varies only remote access).
        assert topo.gpu_to_iommu(0, 0) == 300

    def test_ring_neighbors(self):
        topo = self.make(num_gpus=4)
        assert topo.ring_neighbors(0) == (3, 1)
        assert topo.ring_neighbors(3) == (2, 0)

    def test_traffic_accounting(self):
        topo = self.make()
        topo.gpu_to_iommu(0, 0)
        topo.iommu_to_gpu(1, 0)
        topo.gpu_to_gpu(0, 1, 0)
        topo.probe_to_gpu(2, 0)
        assert topo.total_host_traffic() == 2
        assert topo.total_peer_traffic() == 2

    def test_invalid_gpu_count(self):
        with pytest.raises(ValueError):
            self.make(num_gpus=0)
