"""Correctness tests for the persistent result cache.

The acceptance contract: mutating *any* fingerprinted input (config field,
seed, scale, policy, fault plan, options) changes the digest and forces a
re-simulation; mutating nothing yields a hit whose
:class:`~repro.sim.results.SimulationResult` is identical to the original.
"""

import dataclasses
import json

import pytest

from repro.config.presets import baseline_config
from repro.faults.plan import FaultPlan
from repro.reporting.export import result_from_dict, result_to_dict
from repro.sim.cache import (
    CacheCorruptionWarning,
    ResultCache,
    canonicalize,
    code_version_hash,
    fingerprint_digest,
    run_fingerprint,
)
from repro.sim.driver import run_single_app

SCALE = 0.05


def _fingerprint(**overrides):
    base = dict(
        kind="single",
        workload="MM",
        policy="baseline",
        config=baseline_config(),
        scale=SCALE,
        seed=None,
        options={},
    )
    base.update(overrides)
    return run_fingerprint(**base)


@pytest.fixture()
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


@pytest.fixture(scope="module")
def mm_result():
    return run_single_app("MM", scale=SCALE)


class TestFingerprint:
    def test_identical_inputs_identical_digest(self):
        assert fingerprint_digest(_fingerprint()) == fingerprint_digest(_fingerprint())

    def test_every_fingerprinted_input_changes_digest(self):
        base = fingerprint_digest(_fingerprint())
        config = baseline_config()
        mutations = {
            "policy": _fingerprint(policy="least-tlb"),
            "scale": _fingerprint(scale=SCALE * 2),
            "seed": _fingerprint(seed=config.seed + 1),
            "workload": _fingerprint(workload="BFS"),
            "kind": _fingerprint(kind="alone"),
            "config.num_gpus": _fingerprint(config=config.derive(num_gpus=8)),
            "config.spill_budget": _fingerprint(config=config.derive(spill_budget=2)),
            "config.l1_tlb": _fingerprint(
                config=dataclasses.replace(
                    config,
                    gpu=dataclasses.replace(
                        config.gpu,
                        l1_tlb=dataclasses.replace(config.gpu.l1_tlb, num_entries=32),
                    ),
                )
            ),
            "fault_plan": _fingerprint(
                options={"fault_plan": FaultPlan.parse("flip-tlb:0.01")}
            ),
            "options": _fingerprint(options={"max_cycles": 1000}),
        }
        digests = {name: fingerprint_digest(fp) for name, fp in mutations.items()}
        for name, digest in digests.items():
            assert digest != base, f"mutating {name} did not change the digest"
        # All mutations are also distinct from each other.
        assert len(set(digests.values())) == len(digests)

    def test_seed_none_resolves_to_config_seed(self):
        config = baseline_config()
        assert fingerprint_digest(_fingerprint(seed=None)) == fingerprint_digest(
            _fingerprint(seed=config.seed)
        )

    def test_code_version_in_key(self):
        assert _fingerprint()["code"] == code_version_hash()
        assert len(code_version_hash()) == 64

    def test_canonicalize_is_deterministic_for_config(self):
        a = canonicalize(baseline_config())
        b = canonicalize(baseline_config())
        assert a == b
        json.dumps(a)  # must be JSON-serialisable


class TestResultCache:
    def test_unchanged_inputs_hit_with_identical_result(self, cache, mm_result):
        fingerprint = _fingerprint()
        cache.put(fingerprint, mm_result)
        restored = cache.get(_fingerprint())  # freshly built, same inputs
        assert restored is not None
        assert cache.hits == 1
        assert result_to_dict(restored, include_stream=True) == result_to_dict(
            mm_result, include_stream=True
        )

    def test_mutated_inputs_miss(self, cache, mm_result):
        cache.put(_fingerprint(), mm_result)
        assert cache.get(_fingerprint(policy="least-tlb")) is None
        assert cache.get(_fingerprint(scale=SCALE * 2)) is None
        assert cache.get(_fingerprint(seed=999)) is None
        assert cache.get(
            _fingerprint(config=baseline_config().derive(num_gpus=8))
        ) is None
        assert cache.misses == 4

    def test_end_to_end_rerun_hits(self, cache):
        """A second identical run is served from the cache and matches the
        simulated result bit-for-bit."""
        fingerprint = _fingerprint()
        assert cache.get(fingerprint) is None
        result = run_single_app("MM", scale=SCALE)
        cache.put(fingerprint, result)
        cached = cache.get(_fingerprint())
        assert result_to_dict(cached) == result_to_dict(result)
        assert (
            cached.apps[1].accesses == result.apps[1].accesses
            and cached.events_executed == result.events_executed
        )

    def test_corrupt_entry_is_quarantined_and_missed(self, cache, mm_result):
        fingerprint = _fingerprint()
        path = cache.put(fingerprint, mm_result)
        path.write_text("{ truncated")
        with pytest.warns(CacheCorruptionWarning, match="quarantined"):
            assert cache.get(fingerprint) is None
        assert not path.exists()  # never served again...
        quarantined = path.with_name(path.name + ".corrupt")
        assert quarantined.exists()  # ...but the evidence survives
        assert quarantined.read_text() == "{ truncated"
        assert cache.corruptions == 1
        assert cache.describe()["corruptions"] == 1
        # Quarantined entries are invisible to entry_count/clear globs.
        assert cache.entry_count() == 0
        # Re-storing repairs the cache.
        cache.put(fingerprint, mm_result)
        assert cache.get(fingerprint) is not None

    def test_fingerprint_mismatch_is_collision_not_hit(self, cache, mm_result):
        fingerprint = _fingerprint()
        path = cache.put(fingerprint, mm_result)
        payload = json.loads(path.read_text())
        payload["fingerprint"]["seed"] = 4242  # forge a colliding entry
        path.write_text(json.dumps(payload))
        with pytest.warns(CacheCorruptionWarning, match="collision"):
            assert cache.get(fingerprint) is None

    def test_disabled_cache_never_stores_or_hits(self, tmp_path, mm_result):
        cache = ResultCache(tmp_path / "off", enabled=False)
        fingerprint = _fingerprint()
        assert cache.put(fingerprint, mm_result) is None
        assert cache.get(fingerprint) is None
        assert cache.entry_count() == 0

    def test_from_env_honours_no_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert ResultCache.from_env().enabled is False
        monkeypatch.setenv("REPRO_NO_CACHE", "0")
        cache = ResultCache.from_env()
        assert cache.enabled is True
        assert cache.cache_dir == tmp_path / "env"

    def test_clear_and_entry_count(self, cache, mm_result):
        cache.put(_fingerprint(), mm_result)
        cache.put(_fingerprint(policy="least-tlb"), mm_result)
        assert cache.entry_count() == 2
        assert cache.clear() == 2
        assert cache.entry_count() == 0


class TestResultRoundTrip:
    def test_result_dict_round_trip(self, mm_result):
        data = result_to_dict(mm_result, include_stream=True)
        assert result_to_dict(result_from_dict(data), include_stream=True) == data
