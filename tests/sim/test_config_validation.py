"""Unit tests for configuration validation and presets."""

import pytest

from repro.config.presets import (
    baseline_config,
    dws_config,
    infinite_iommu_config,
    large_page_config,
    local_page_table_config,
    remote_latency_config,
    scaled_config,
    small_iommu_config,
    spill_budget_config,
)
from repro.config.system import (
    PAGE_2MB,
    PAGE_4KB,
    GPUConfig,
    IOMMUConfig,
    InterconnectConfig,
    SystemConfig,
    TLBLevelConfig,
    TrackerConfig,
)


class TestTLBLevelConfig:
    def test_rejects_non_dividing_associativity(self):
        with pytest.raises(ValueError):
            TLBLevelConfig(num_entries=100, associativity=16, lookup_latency=1)

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            TLBLevelConfig(num_entries=16, associativity=16, lookup_latency=-1)


class TestSystemConfig:
    def test_page_size_power_of_two(self):
        with pytest.raises(ValueError):
            SystemConfig(page_size=3000)

    def test_negative_spill_budget(self):
        with pytest.raises(ValueError):
            SystemConfig(spill_budget=-1)

    def test_page_table_levels(self):
        assert SystemConfig(page_size=PAGE_4KB).page_table_levels == 4
        assert SystemConfig(page_size=PAGE_2MB).page_table_levels == 3

    def test_derive_replaces_fields(self):
        config = baseline_config()
        derived = config.derive(num_gpus=8, seed=42)
        assert derived.num_gpus == 8
        assert derived.seed == 42
        assert config.num_gpus == 4  # original untouched


class TestSubConfigs:
    def test_gpu_config_validation(self):
        with pytest.raises(ValueError):
            GPUConfig(num_cus=0)
        with pytest.raises(ValueError):
            GPUConfig(slots_per_cu=0)

    def test_iommu_config_validation(self):
        with pytest.raises(ValueError):
            IOMMUConfig(num_walkers=0)
        with pytest.raises(ValueError):
            IOMMUConfig(walker_threads=0)
        with pytest.raises(ValueError):
            IOMMUConfig(walker_scheduler="lifo")

    def test_tracker_config_validation(self):
        with pytest.raises(ValueError):
            TrackerConfig(kind="neural")
        with pytest.raises(ValueError):
            TrackerConfig(total_entries=0)

    def test_interconnect_validation(self):
        with pytest.raises(ValueError):
            InterconnectConfig(host_link_latency=-1)
        with pytest.raises(ValueError):
            InterconnectConfig(remote_latency_scale=0)

    def test_scaled_peer_latency_rounds(self):
        ic = InterconnectConfig(peer_link_latency=100, remote_latency_scale=3.5)
        assert ic.scaled_peer_latency == 350


class TestPresets:
    def test_baseline_is_table2(self):
        config = baseline_config()
        assert config.num_gpus == 4
        assert config.iommu.tlb.num_entries == 4096
        assert not config.iommu.infinite_tlb

    def test_infinite_preset(self):
        assert infinite_iommu_config().iommu.infinite_tlb

    def test_small_iommu_preset(self):
        assert small_iommu_config().iommu.tlb.num_entries == 2048

    def test_large_page_preset(self):
        config = large_page_config()
        assert config.page_size == PAGE_2MB
        assert config.page_table_levels == 3

    def test_local_page_table_preset(self):
        assert local_page_table_config().local_page_tables

    def test_scaled_preset_keeps_tracker_budget(self):
        assert scaled_config(16).tracker.total_entries == 2048
        assert scaled_config(16).num_gpus == 16

    def test_remote_latency_preset(self):
        assert remote_latency_config(5.0).interconnect.remote_latency_scale == 5.0

    def test_dws_preset(self):
        assert dws_config().iommu.walker_scheduler == "dws"

    def test_spill_budget_preset(self):
        assert spill_budget_config(2).spill_budget == 2

    def test_presets_are_frozen(self):
        config = baseline_config()
        with pytest.raises(AttributeError):
            config.num_gpus = 8  # staticcheck: ignore[D6] -- asserts frozen-ness
