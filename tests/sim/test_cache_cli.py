"""``repro cache``: stats and prune subcommands."""

import json
import os
import time

import pytest

from repro.cli import main
from repro.reporting.export import result_to_dict
from repro.serve.requests import parse_job
from repro.sim.cache import ResultCache, cache_stats


@pytest.fixture()
def populated_cache(tmp_path):
    """A cache dir with two real entries, one corrupt file, one temp."""
    cache = ResultCache(tmp_path / "cache")
    for seed in (1, 2):
        spec = parse_job({"workload": "MM", "scale": 0.02, "seed": seed,
                          "backend": "functional"})
        cache.put(spec.fingerprint(), spec.execute())
    (cache.cache_dir / "deadbeef.json.corrupt").write_text("junk")
    (cache.cache_dir / "orphan.tmp").write_text("junk")
    return cache


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr()
    return code, out.out, out.err


class TestCacheStats:
    def test_json_output(self, populated_cache, capsys):
        code, out, _err = run_cli(
            capsys, "cache", "stats", "--json",
            "--cache-dir", str(populated_cache.cache_dir))
        assert code == 0
        stats = json.loads(out)
        assert stats["entries"] == 2
        assert stats["bytes"] > 0
        assert stats["corrupt_entries"] == 1
        assert stats["stale_tmp_files"] == 1
        assert stats["since_stamp"]["hit_rate"] is None  # no lookups yet

    def test_human_output(self, populated_cache, capsys):
        code, out, _err = run_cli(
            capsys, "cache", "stats",
            "--cache-dir", str(populated_cache.cache_dir))
        assert code == 0
        assert "entries: 2" in out
        assert "quarantined (*.corrupt): 1" in out

    def test_hit_rate_accumulates_across_flushes(self, populated_cache,
                                                 capsys):
        cache = populated_cache
        spec = parse_job({"workload": "MM", "scale": 0.02, "seed": 1,
                          "backend": "functional"})
        assert cache.get(spec.fingerprint()) is not None  # hit
        assert cache.get({"nope": 1}) is None  # miss
        cache.flush_session_stats()
        assert cache.hits == 0  # flushed, not double-counted

        code, out, _err = run_cli(
            capsys, "cache", "stats", "--json",
            "--cache-dir", str(cache.cache_dir))
        assert code == 0
        since = json.loads(out)["since_stamp"]
        assert since["hits"] == 1
        assert since["lookups"] == 2
        assert since["hit_rate"] == 0.5

    def test_stamp_resets_window(self, populated_cache, capsys):
        cache = populated_cache
        spec = parse_job({"workload": "MM", "scale": 0.02, "seed": 1,
                          "backend": "functional"})
        cache.get(spec.fingerprint())
        cache.flush_session_stats()
        code, out, _err = run_cli(
            capsys, "cache", "stats", "--json", "--stamp",
            "--cache-dir", str(cache.cache_dir))
        assert code == 0
        assert json.loads(out)["since_stamp"]["lookups"] == 0


class TestCachePrune:
    def test_usage_errors(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as info:
            main(["cache", "prune", "--cache-dir", str(tmp_path)])
        assert info.value.code == 2
        _out, err = capsys.readouterr().out, capsys.readouterr().err
        with pytest.raises(SystemExit) as info:
            main(["cache", "prune", "--older-than", "-1",
                  "--cache-dir", str(tmp_path)])
        assert info.value.code == 2

    def test_prune_by_age(self, populated_cache, capsys):
        cache = populated_cache
        entries = sorted(cache.cache_dir.glob("*.json"))
        # Age one entry (and the corrupt file) far into the past.
        old = time.time() - 40 * 86400  # staticcheck: ignore[D2] -- epoch time for os.utime
        os.utime(entries[0], (old, old))
        os.utime(cache.cache_dir / "deadbeef.json.corrupt", (old, old))
        code, out, _err = run_cli(
            capsys, "cache", "prune", "--older-than", "30", "--json",
            "--cache-dir", str(cache.cache_dir))
        assert code == 0
        summary = json.loads(out)
        assert summary["removed"] == 1
        assert summary["kept"] == 1
        assert summary["corrupt_removed"] == 1
        assert cache.entry_count() == 1

    def test_prune_by_size_keeps_newest(self, populated_cache, capsys):
        cache = populated_cache
        entries = sorted(cache.cache_dir.glob("*.json"),
                         key=lambda p: p.stat().st_mtime)
        old = time.time() - 3600  # staticcheck: ignore[D2] -- epoch time for os.utime
        os.utime(entries[0], (old, old))
        keep_bytes = entries[-1].stat().st_size
        code, out, _err = run_cli(
            capsys, "cache", "prune", "--max-bytes", str(keep_bytes),
            "--json", "--cache-dir", str(cache.cache_dir))
        assert code == 0
        summary = json.loads(out)
        assert summary["removed"] == 1
        assert summary["bytes_kept"] <= keep_bytes
        assert entries[-1].exists()  # newest survived
        assert not entries[0].exists()

    def test_prune_reclaims_stale_tmp(self, populated_cache, capsys):
        cache = populated_cache
        tmp_file = cache.cache_dir / "orphan.tmp"
        old = time.time() - 7200  # staticcheck: ignore[D2] -- epoch time for os.utime
        os.utime(tmp_file, (old, old))
        code, out, _err = run_cli(
            capsys, "cache", "prune", "--older-than", "9999", "--json",
            "--cache-dir", str(cache.cache_dir))
        assert code == 0
        assert json.loads(out)["tmp_removed"] == 1
        assert not tmp_file.exists()

    def test_stats_after_prune_consistent(self, populated_cache, capsys):
        cache = populated_cache
        cache.prune(max_bytes=0)
        stats = cache_stats(cache)
        assert stats["entries"] == 0
        assert stats["bytes"] == 0
