"""Concurrent cache writers: the ``--clear-cache`` vs atomic-store race.

Two processes hammer one cache directory — one stores/loads, one
clears/prunes in a loop.  The invariants: no process ever crashes, no
corrupt entry is ever *served* (a torn read would surface as a
quarantine or an exception), and the cache still works afterwards.
"""

import multiprocessing

import pytest

from repro.reporting.export import result_from_dict, result_to_dict
from repro.serve.requests import parse_job
from repro.sim.cache import ResultCache, cache_stats


@pytest.fixture(scope="module")
def tiny_payload():
    spec = parse_job({"workload": "MM", "scale": 0.02, "seed": 3,
                      "backend": "functional"})
    return spec.fingerprint(), result_to_dict(spec.execute(),
                                              include_stream=True)


def _writer(cache_dir, fingerprint, result_dict, iterations, failures):
    try:
        cache = ResultCache(cache_dir)
        result = result_from_dict(result_dict)
        served = 0
        for _ in range(iterations):
            cache.put(fingerprint, result)
            loaded = cache.get(fingerprint)
            if loaded is not None:
                served += 1
                if loaded.events_executed != result.events_executed:
                    failures.put("torn read served from cache")
                    return
        if served == 0:
            failures.put("writer never read back its own store")
    except Exception as exc:  # noqa: BLE001 - reported to the parent
        failures.put(f"writer crashed: {type(exc).__name__}: {exc}")


def _clearer(cache_dir, iterations, failures):
    try:
        cache = ResultCache(cache_dir)
        for i in range(iterations):
            if i % 2:
                cache.clear()
            else:
                cache.prune(max_bytes=0)
    except Exception as exc:  # noqa: BLE001 - reported to the parent
        failures.put(f"clearer crashed: {type(exc).__name__}: {exc}")


class TestConcurrentWriters:
    def test_store_vs_clear_hammer(self, tmp_path, tiny_payload):
        fingerprint, result_dict = tiny_payload
        cache_dir = tmp_path / "cache"
        failures = multiprocessing.Queue()
        writer = multiprocessing.Process(
            target=_writer,
            args=(str(cache_dir), fingerprint, result_dict, 60, failures))
        clearer = multiprocessing.Process(
            target=_clearer, args=(str(cache_dir), 60, failures))
        writer.start()
        clearer.start()
        writer.join(timeout=120)
        clearer.join(timeout=120)
        assert not writer.is_alive() and not clearer.is_alive()
        assert writer.exitcode == 0
        assert clearer.exitcode == 0
        assert failures.empty(), failures.get()

        # The cache still works after the storm.
        cache = ResultCache(cache_dir)
        result = result_from_dict(result_dict)
        cache.put(fingerprint, result)
        loaded = cache.get(fingerprint)
        assert loaded is not None
        assert loaded.events_executed == result.events_executed
        # No stray corruption artifacts were served silently either way,
        # and the stats report stays readable.
        stats = cache_stats(cache)
        assert stats["entries"] >= 1

    def test_put_retries_when_directory_vanishes(self, tmp_path,
                                                 tiny_payload, monkeypatch):
        """Deterministic reproduction of the race: the cache directory is
        removed between the temp-file write and the rename; ``put`` must
        recreate it and succeed."""
        import shutil

        fingerprint, result_dict = tiny_payload
        cache = ResultCache(tmp_path / "cache")
        result = result_from_dict(result_dict)
        original = cache._put_once
        calls = {"n": 0}

        def sabotaged(path, payload):
            if calls["n"] == 0:
                calls["n"] += 1
                shutil.rmtree(cache.cache_dir, ignore_errors=True)
                raise FileNotFoundError("simulated concurrent clear")
            return original(path, payload)

        monkeypatch.setattr(cache, "_put_once", sabotaged)
        assert cache.put(fingerprint, result) is not None
        assert cache.get(fingerprint) is not None
