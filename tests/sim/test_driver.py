"""Unit tests for the high-level drivers."""

import pytest

from repro.config.presets import baseline_config
from repro.sim.driver import (
    DEFAULT_SCALE_ENV,
    default_scale,
    run_alone,
    run_mix,
    run_multi_app,
    run_single_app,
)

SCALE = 0.05


class TestDefaultScale:
    def test_defaults_to_one(self, monkeypatch):
        monkeypatch.delenv(DEFAULT_SCALE_ENV, raising=False)
        assert default_scale() == 1.0

    def test_reads_env(self, monkeypatch):
        monkeypatch.setenv(DEFAULT_SCALE_ENV, "0.25")
        assert default_scale() == 0.25

    def test_rejects_nonpositive(self, monkeypatch):
        monkeypatch.setenv(DEFAULT_SCALE_ENV, "0")
        with pytest.raises(ValueError):
            default_scale()


class TestDrivers:
    def test_run_single_app_defaults(self):
        result = run_single_app("FIR", scale=SCALE)
        assert result.workload_kind == "single"
        assert result.policy_name == "baseline"
        assert result.apps[1].app_name == "FIR"

    def test_run_multi_app_by_name(self):
        result = run_multi_app("W1", scale=SCALE)
        assert result.workload_name == "W1"
        assert len(result.apps) == 4

    def test_run_multi_app_by_tuple(self):
        result = run_multi_app(("FIR", "AES", "FFT", "SC"), scale=SCALE)
        assert len(result.apps) == 4

    def test_run_mix(self):
        result = run_mix("W18", scale=SCALE)
        assert len(result.apps) == 6
        assert result.workload_kind == "multi"

    def test_run_alone(self):
        result = run_alone("KM", scale=SCALE)
        assert len(result.apps) == 1
        assert result.apps[1].gpu_ids == (0,)

    def test_policy_options_forwarded(self):
        result = run_single_app(
            "FIR", policy="least-tlb", scale=SCALE,
            policy_options={"remote_probes": False},
        )
        assert result.iommu_counters.get("remote_hits", 0) == 0

    def test_explicit_config_used(self):
        config = baseline_config(num_gpus=2)
        result = run_single_app("FIR", config, scale=SCALE)
        assert result.metadata["num_gpus"] == 2
