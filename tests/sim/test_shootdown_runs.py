"""Integration tests for the periodic TLB-shootdown scenario (Section 4.4)."""

import numpy as np

from repro.sim.system import MultiGPUSystem
from repro.workloads.trace import CUStream, Placement, Workload


def looping_workload(pages=32, repeats_of_sweep=20):
    vpns = np.tile(np.arange(pages, dtype=np.int64), repeats_of_sweep)
    placement = Placement(
        gpu_id=0, pid=1, app_name="loop", cu_ids=[0],
        streams=[CUStream(
            vpns,
            np.full(len(vpns), 200, dtype=np.int64),
            np.ones(len(vpns), dtype=np.int64),
        )],
    )
    return Workload(name="loop", kind="multi", placements=[placement],
                    app_names={1: "loop"}, footprints={1: np.arange(pages)})


def test_shootdowns_fire_and_execution_still_completes(tiny_config):
    system = MultiGPUSystem(
        tiny_config, looping_workload(), "least-tlb", shootdown_interval=10_000
    )
    result = system.run()
    assert result.metadata["shootdowns"] >= 2
    assert result.apps[1].counters["runs"] == 640


def test_shootdowns_cost_extra_walks(tiny_config):
    quiet = MultiGPUSystem(tiny_config, looping_workload(), "baseline").run()
    noisy = MultiGPUSystem(
        tiny_config, looping_workload(), "baseline", shootdown_interval=10_000
    ).run()
    # Every shootdown re-cools the TLBs: the same trace needs more walks.
    assert noisy.apps[1].counters["walks"] > quiet.apps[1].counters["walks"]
    assert noisy.apps[1].exec_cycles >= quiet.apps[1].exec_cycles


def test_least_tlb_recovers_after_shootdown(tiny_config):
    """After a shootdown resets the tracker, stale probes must not wedge
    the protocol: everything still completes and the tracker mirrors the
    L2 contents again at quiescence."""
    system = MultiGPUSystem(
        tiny_config, looping_workload(), "least-tlb", shootdown_interval=7_000
    )
    result = system.run()
    assert result.apps[1].counters["runs"] == 640
    tracker = system.policy.tracker
    gpu = system.gpus[0]
    for vpn in range(32):
        assert gpu.l2_tlb.contains(1, vpn) == (0 in tracker.query(1, vpn))
