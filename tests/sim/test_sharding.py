"""Sharded execution: planning, merge exactness, and determinism.

``shards>1`` is a documented partitioned-system approximation
(:mod:`repro.sim.sharding`), so these tests do *not* compare sharded
numbers to unsharded ones.  What they pin instead:

* ``shards=1`` is exactly the unsharded run;
* the merged result is backend-agnostic — bit-identical whether the
  shards ran on the event, functional or vectorized backend;
* the merge is independent of worker completion order (results are
  indexed by shard id, and simulating the shards in any order
  reproduces ``run_sharded``'s output byte for byte);
* latency means merge exactly: the sample count is recoverable from the
  ``served_*`` counters and ``round(mean * count)`` recovers the integer
  cycle totals (the ``_lat_count`` / ``_weighted_mean`` contract);
* everything that needs one global event order is rejected loudly.
"""

import dataclasses
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.system import (
    GPUConfig,
    IOMMUConfig,
    InterconnectConfig,
    SystemConfig,
    TLBLevelConfig,
    TrackerConfig,
)
from repro.reporting.export import result_to_dict
from repro.sim.backends import BackendUnsupported
from repro.sim.driver import simulate
from repro.sim.sharding import (
    merge_shard_results,
    plan_shards,
    run_sharded,
    shard_workload,
)
from repro.workloads.trace import CUStream, Placement, Workload


def tiny_config(num_gpus=4, seed=1):
    return SystemConfig(
        num_gpus=num_gpus,
        gpu=GPUConfig(
            num_cus=2,
            slots_per_cu=2,
            l1_tlb=TLBLevelConfig(num_entries=2, associativity=2, lookup_latency=1),
            l2_tlb=TLBLevelConfig(num_entries=8, associativity=4, lookup_latency=3),
        ),
        iommu=IOMMUConfig(
            tlb=TLBLevelConfig(num_entries=16, associativity=4, lookup_latency=10),
            num_walkers=2,
            walker_threads=2,
            walk_latency=40,
        ),
        tracker=TrackerConfig(total_entries=32, kind="cuckoo"),
        interconnect=InterconnectConfig(host_link_latency=15, peer_link_latency=5),
        seed=seed,
    )


def make_workload(gpu_pid_vpns, kind="multi"):
    """``gpu_pid_vpns``: {gpu_id: {pid: [vpns]}} -> a Workload."""
    placements = []
    footprints: dict[int, set] = {}
    app_names = {}
    for gpu_id, by_pid in sorted(gpu_pid_vpns.items()):
        for pid, vpns in sorted(by_pid.items()):
            if not vpns:
                continue
            n = len(vpns)
            app_names[pid] = f"app{pid}"
            footprints.setdefault(pid, set()).update(vpns)
            placements.append(
                Placement(
                    gpu_id=gpu_id, pid=pid, app_name=f"app{pid}", cu_ids=[0],
                    streams=[CUStream(
                        np.array(vpns, dtype=np.int64),
                        np.full(n, 37, dtype=np.int64),
                        np.ones(n, dtype=np.int64),
                    )],
                )
            )
    return Workload(
        name="rand", kind=kind, placements=placements, app_names=app_names,
        footprints={
            pid: np.array(sorted(fp), dtype=np.int64)
            for pid, fp in footprints.items()
        },
    )


def spanning_workload():
    """Two apps, each spanning both halves of a 4-GPU system."""
    return make_workload({
        0: {1: [0, 1, 2, 3, 8]},
        1: {2: [4, 5, 6]},
        2: {1: [0, 2, 9, 10]},
        3: {2: [5, 7, 11]},
    })


class TestPlanShards:
    @given(
        occupied=st.sets(st.integers(0, 15), min_size=1, max_size=16),
        shards=st.integers(1, 8),
    )
    @settings(max_examples=50, deadline=None)
    def test_partition_properties(self, occupied, shards):
        workload = make_workload({g: {1: [0]} for g in occupied})
        blocks = plan_shards(workload, shards)
        # Exactly min(shards, occupied) contiguous blocks covering every
        # occupied GPU once, sizes differing by at most one.
        assert len(blocks) == min(shards, len(occupied))
        flat = [g for block in blocks for g in block]
        assert flat == sorted(occupied)
        sizes = {len(block) for block in blocks}
        assert max(sizes) - min(sizes) <= 1

    def test_deterministic(self):
        workload = spanning_workload()
        assert plan_shards(workload, 2) == plan_shards(workload, 2)
        assert plan_shards(workload, 2) == [[0, 1], [2, 3]]

    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError, match="shards"):
            plan_shards(spanning_workload(), 0)
        with pytest.raises(ValueError, match="no placements"):
            plan_shards(make_workload({}), 2)


class TestShardWorkload:
    def test_remaps_and_filters(self):
        shard = shard_workload(spanning_workload(), [2, 3])
        assert sorted({p.gpu_id for p in shard.placements}) == [0, 1]
        assert set(shard.app_names) == {1, 2}
        # GPU 2 held pid 1, GPU 3 held pid 2; local ids follow block order.
        by_gpu = {p.gpu_id: p.pid for p in shard.placements}
        assert by_gpu == {0: 1, 1: 2}

    def test_drops_absent_pids(self):
        shard = shard_workload(spanning_workload(), [1])
        assert set(shard.app_names) == {2}
        assert set(shard.footprints) == {2}


class TestRunSharded:
    def test_single_shard_is_exactly_unsharded(self):
        config, workload = tiny_config(), spanning_workload()
        ref = simulate(config, workload, "baseline")
        one = run_sharded(config, workload, "baseline", shards=1)
        assert dataclasses.asdict(one) == dataclasses.asdict(ref)

    @pytest.mark.parametrize("shards", [2, 4])
    def test_merge_is_backend_agnostic(self, shards):
        config, workload = tiny_config(), spanning_workload()
        dicts = [
            result_to_dict(run_sharded(
                config, workload, "baseline", backend=backend, shards=shards,
            ))
            for backend in ("event", "functional", "vectorized")
        ]
        assert dicts[0] == dicts[1] == dicts[2]

    def test_merged_metadata(self):
        config, workload = tiny_config(), spanning_workload()
        result = run_sharded(config, workload, "baseline", shards=2)
        assert result.metadata["num_gpus"] == config.num_gpus
        assert result.metadata["shards"] == 2
        assert result.snapshots == []
        assert result.iommu_stream is None

    def test_completion_order_independence(self):
        """Simulating the shards in any order reproduces ``run_sharded``.

        ``run_sharded`` collects worker results in *completion* order but
        slots them by shard id; this drives the same merge with every
        possible processing order in-process and demands byte-identical
        JSON.
        """
        config, workload = tiny_config(), spanning_workload()
        expected = result_to_dict(
            run_sharded(config, workload, "baseline", shards=2)
        )
        blocks = plan_shards(workload, 2)
        jobs = [
            (config.derive(num_gpus=len(block)), shard_workload(workload, block))
            for block in blocks
        ]
        order = list(range(len(jobs)))
        for trial in range(3):
            random.Random(trial).shuffle(order)
            slots = [None] * len(jobs)
            for index in order:
                shard_config, shard_wl = jobs[index]
                slots[index] = simulate(shard_config, shard_wl, "baseline")
            merged = merge_shard_results(config, workload, slots)
            assert result_to_dict(merged) == expected

    def test_deterministic_across_runs(self):
        config, workload = tiny_config(), spanning_workload()
        first = run_sharded(config, workload, "baseline",
                            backend="vectorized", shards=2)
        second = run_sharded(config, workload, "baseline",
                             backend="vectorized", shards=2)
        assert result_to_dict(first) == result_to_dict(second)


class TestMergeExactness:
    def test_latency_count_recoverable_from_served_counters(self):
        """Merging a result with itself as its only shard must reproduce
        its latency means bit-identically — this fails unless the
        ``served_*`` counter sum is the true sample count and
        ``round(mean * count)`` recovers the integer cycle total."""
        config, workload = tiny_config(), spanning_workload()
        ref = simulate(config, workload, "baseline")
        merged = merge_shard_results(config, workload, [ref])
        for pid, app in ref.apps.items():
            assert merged.apps[pid].mean_translation_latency == \
                app.mean_translation_latency
            assert merged.apps[pid].counters == app.counters
        assert merged.walker_queue_wait_mean == ref.walker_queue_wait_mean
        assert merged.total_cycles == ref.total_cycles

    def test_merged_counters_are_shard_sums(self):
        config, workload = tiny_config(), spanning_workload()
        blocks = plan_shards(workload, 2)
        parts = [
            simulate(config.derive(num_gpus=len(block)),
                     shard_workload(workload, block), "baseline")
            for block in blocks
        ]
        merged = merge_shard_results(config, workload, parts)
        assert merged.events_executed == sum(p.events_executed for p in parts)
        assert merged.total_cycles == max(p.total_cycles for p in parts)
        for key in merged.iommu_counters:
            assert merged.iommu_counters[key] == sum(
                p.iommu_counters.get(key, 0) for p in parts
            )


class TestRejections:
    def test_global_caps_rejected(self):
        config, workload = tiny_config(), spanning_workload()
        with pytest.raises(ValueError, match="max_cycles/max_events"):
            run_sharded(config, workload, shards=2, max_cycles=100)
        with pytest.raises(ValueError, match="max_cycles/max_events"):
            run_sharded(config, workload, shards=2, max_events=100)

    @pytest.mark.parametrize("key,value", [
        ("snapshot_interval", 100),
        ("shootdown_interval", 50),
        ("record_iommu_stream", True),
        ("check_invariants", True),
    ])
    def test_global_order_options_rejected(self, key, value):
        config, workload = tiny_config(), spanning_workload()
        with pytest.raises(ValueError, match=key):
            run_sharded(config, workload, shards=2, **{key: value})

    def test_backend_unsupported_propagates_from_workers(self):
        config, workload = tiny_config(), spanning_workload()
        with pytest.raises(BackendUnsupported, match="tlb-probing"):
            run_sharded(config, workload, "tlb-probing",
                        backend="vectorized", shards=2)

    def test_bad_shard_count(self):
        with pytest.raises(ValueError, match="shards"):
            run_sharded(tiny_config(), spanning_workload(), shards=0)
