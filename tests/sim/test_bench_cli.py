"""CLI tests for ``repro bench`` and the ``--profile`` flag."""

import json

import pytest

from repro.cli import main


def test_bench_list_exits_zero(capsys):
    assert main(["bench", "--list"]) == 0
    out = capsys.readouterr().out
    assert "fig14_single_app_perf" in out
    assert "jobs" in out


def test_bench_list_honours_only(capsys):
    assert main(["bench", "--list", "--only", "fig2*"]) == 0
    out = capsys.readouterr().out
    assert "fig21_gpu_scaling" in out
    assert "fig14_single_app_perf" not in out


def test_bench_unknown_only_is_usage_error(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["bench", "--only", "no-such-bench"])
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert "error:" in err and "no-such-bench" in err


def test_bench_cold_then_warm(tmp_path, capsys):
    argv = [
        "bench", "--only", "fig02_baseline_hit_rates", "--scale", "0.05",
        "--jobs", "1", "--cache-dir", str(tmp_path / "cache"),
    ]
    assert main(argv) == 0
    cold = capsys.readouterr().out
    assert "simulated, 0 failed)" in cold

    json_path = tmp_path / "summary.json"
    assert main(argv + ["--json", str(json_path)]) == 0
    warm = capsys.readouterr().out
    assert "hit" in warm
    summary = json.loads(json_path.read_text())
    assert summary["cache_hits"] == summary["unique_jobs"]
    assert summary["simulated"] == 0
    assert len(summary["outcomes"]) == summary["unique_jobs"]


def test_bench_no_cache_skips_store(tmp_path, capsys):
    argv = [
        "bench", "--only", "fig02_baseline_hit_rates", "--scale", "0.05",
        "--jobs", "1", "--cache-dir", str(tmp_path), "--no-cache",
    ]
    assert main(argv) == 0
    capsys.readouterr()
    assert not list(tmp_path.glob("*.json"))


def test_bench_clear_cache(tmp_path, capsys):
    argv = [
        "bench", "--only", "fig02_baseline_hit_rates", "--scale", "0.05",
        "--jobs", "1", "--cache-dir", str(tmp_path),
    ]
    assert main(argv) == 0
    capsys.readouterr()
    assert list(tmp_path.glob("*.json"))
    assert main(argv + ["--clear-cache"]) == 0
    out = capsys.readouterr().out
    assert "cleared" in out


def _usage_error(argv, capsys, fragment):
    with pytest.raises(SystemExit) as excinfo:
        main(argv)
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert "error:" in err and fragment in err


def test_bench_zero_jobs_is_usage_error(capsys):
    _usage_error(["bench", "--jobs", "0"], capsys, "--jobs")
    _usage_error(["bench", "--jobs", "-2"], capsys, "--jobs")


def test_bench_negative_retries_is_usage_error(capsys):
    _usage_error(["bench", "--retries", "-1"], capsys, "--retries")


def test_bench_nonpositive_timeout_is_usage_error(capsys):
    _usage_error(["bench", "--job-timeout", "0"], capsys, "--job-timeout")


def test_bench_resume_without_cache_is_usage_error(capsys):
    _usage_error(["bench", "--resume", "--no-cache"], capsys, "--resume")


def test_bench_bad_chaos_plan_is_usage_error(capsys):
    _usage_error(["bench", "--chaos", "no-such-site:1"], capsys, "--chaos")
    # Protocol sites belong in `repro run --faults`, not a chaos plan.
    _usage_error(["bench", "--chaos", "drop-remote:0.5"], capsys, "--chaos")


def test_bench_profile_rejects_subprocess_chaos(capsys):
    _usage_error(["bench", "--profile", "--chaos", "kill-worker:1"], capsys,
                 "--profile")


def test_run_rejects_runner_chaos_sites(capsys):
    _usage_error(["run", "MM", "--faults", "kill-worker:1"], capsys,
                 "repro bench --chaos")


def test_bench_degraded_family_exits_three(tmp_path, capsys):
    code = main([
        "bench", "--only", "fig02_baseline_hit_rates", "--scale", "0.05",
        "--jobs", "2", "--cache-dir", str(tmp_path / "cache"),
        "--chaos", "fail-job:9", "--retries", "0",
    ])
    assert code == 3
    captured = capsys.readouterr()
    assert "no usable results" in captured.err
    assert "failed: " in captured.err  # the failed-jobs manifest lines


def test_bench_chaos_retry_recovers_and_reports(tmp_path, capsys):
    json_path = tmp_path / "summary.json"
    code = main([
        "bench", "--only", "fig02_baseline_hit_rates", "--scale", "0.05",
        "--jobs", "2", "--cache-dir", str(tmp_path / "cache"),
        "--chaos", "fail-job:1", "--retries", "1", "--json", str(json_path),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "resilience:" in out
    summary = json.loads(json_path.read_text())
    assert summary["failed"] == 0
    assert summary["retries"] == 1
    assert summary["failed_jobs"] == []
    assert summary["chaos"]["plan"] == "fail-job:1"
    assert summary["chaos"]["injected"] == {"fail-job": 1}
    assert {o["status"] for o in summary["outcomes"]} == {"ok"}
    assert max(o["attempts"] for o in summary["outcomes"]) == 2


def test_bench_resume_skips_finished_work(tmp_path, capsys):
    argv = [
        "bench", "--only", "fig02_baseline_hit_rates", "--scale", "0.05",
        "--jobs", "1", "--cache-dir", str(tmp_path / "cache"),
    ]
    assert main(argv) == 0
    capsys.readouterr()
    assert (tmp_path / "cache" / "sweep-journal.jsonl").exists()
    json_path = tmp_path / "resumed.json"
    assert main(argv + ["--resume", "--json", str(json_path)]) == 0
    capsys.readouterr()
    summary = json.loads(json_path.read_text())
    assert summary["simulated"] == 0
    assert summary["cache_hits"] == summary["unique_jobs"]


def test_run_profile_smoke(tmp_path, capsys):
    dump = tmp_path / "run.prof"
    assert main([
        "run", "MM", "--scale", "0.05",
        "--profile", "--profile-dump", str(dump),
    ]) == 0
    err = capsys.readouterr().err  # pstats table goes to stderr
    assert "cumulative" in err
    assert dump.exists()


def test_bench_profile_forces_in_process(tmp_path, capsys):
    assert main([
        "bench", "--only", "fig02_baseline_hit_rates", "--scale", "0.05",
        "--cache-dir", str(tmp_path), "--profile",
    ]) == 0
    err = capsys.readouterr().err
    assert "cumulative" in err
