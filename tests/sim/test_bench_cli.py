"""CLI tests for ``repro bench`` and the ``--profile`` flag."""

import json

import pytest

from repro.cli import main


def test_bench_list_exits_zero(capsys):
    assert main(["bench", "--list"]) == 0
    out = capsys.readouterr().out
    assert "fig14_single_app_perf" in out
    assert "jobs" in out


def test_bench_list_honours_only(capsys):
    assert main(["bench", "--list", "--only", "fig2*"]) == 0
    out = capsys.readouterr().out
    assert "fig21_gpu_scaling" in out
    assert "fig14_single_app_perf" not in out


def test_bench_unknown_only_is_usage_error(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["bench", "--only", "no-such-bench"])
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert "error:" in err and "no-such-bench" in err


def test_bench_cold_then_warm(tmp_path, capsys):
    argv = [
        "bench", "--only", "fig02_baseline_hit_rates", "--scale", "0.05",
        "--jobs", "1", "--cache-dir", str(tmp_path / "cache"),
    ]
    assert main(argv) == 0
    cold = capsys.readouterr().out
    assert "simulated)" in cold

    json_path = tmp_path / "summary.json"
    assert main(argv + ["--json", str(json_path)]) == 0
    warm = capsys.readouterr().out
    assert "hit" in warm
    summary = json.loads(json_path.read_text())
    assert summary["cache_hits"] == summary["unique_jobs"]
    assert summary["simulated"] == 0
    assert len(summary["outcomes"]) == summary["unique_jobs"]


def test_bench_no_cache_skips_store(tmp_path, capsys):
    argv = [
        "bench", "--only", "fig02_baseline_hit_rates", "--scale", "0.05",
        "--jobs", "1", "--cache-dir", str(tmp_path), "--no-cache",
    ]
    assert main(argv) == 0
    capsys.readouterr()
    assert not list(tmp_path.glob("*.json"))


def test_bench_clear_cache(tmp_path, capsys):
    argv = [
        "bench", "--only", "fig02_baseline_hit_rates", "--scale", "0.05",
        "--jobs", "1", "--cache-dir", str(tmp_path),
    ]
    assert main(argv) == 0
    capsys.readouterr()
    assert list(tmp_path.glob("*.json"))
    assert main(argv + ["--clear-cache"]) == 0
    out = capsys.readouterr().out
    assert "cleared" in out


def test_run_profile_smoke(tmp_path, capsys):
    dump = tmp_path / "run.prof"
    assert main([
        "run", "MM", "--scale", "0.05",
        "--profile", "--profile-dump", str(dump),
    ]) == 0
    err = capsys.readouterr().err  # pstats table goes to stderr
    assert "cumulative" in err
    assert dump.exists()


def test_bench_profile_forces_in_process(tmp_path, capsys):
    assert main([
        "bench", "--only", "fig02_baseline_hit_rates", "--scale", "0.05",
        "--cache-dir", str(tmp_path), "--profile",
    ]) == 0
    err = capsys.readouterr().err
    assert "cumulative" in err
