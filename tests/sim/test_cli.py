"""Unit tests for the command-line interface."""

import json
from pathlib import Path

import pytest

from repro.cli import CONFIG_PRESETS, main, resolve_config, resolve_workload
from repro.config.presets import baseline_config


class TestResolvers:
    def test_resolve_config_presets(self):
        for name in CONFIG_PRESETS:
            assert resolve_config(name) is not None

    def test_resolve_config_unknown(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            resolve_config("quantum")
        assert excinfo.value.code == 2
        assert "error: unknown config preset" in capsys.readouterr().err

    def test_resolve_application(self):
        workload = resolve_workload("mm", baseline_config(), 0.05)
        assert workload.kind == "single"

    def test_resolve_multi_workload(self):
        workload = resolve_workload("W1", baseline_config(), 0.05)
        assert workload.kind == "multi"
        assert len(workload.pids) == 4

    def test_resolve_mix_workload(self):
        workload = resolve_workload("W17", baseline_config(), 0.05)
        assert len(workload.pids) == 6

    def test_resolve_npz_file(self, tmp_path):
        from repro.workloads.multi_app import build_single_app_workload
        from repro.workloads.trace_io import save_workload

        path = save_workload(
            build_single_app_workload("FIR", baseline_config(), scale=0.05),
            tmp_path / "w.npz",
        )
        workload = resolve_workload(str(path), baseline_config(), 0.05)
        assert workload.name == "FIR"

    def test_resolve_unknown(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            resolve_workload("nope", baseline_config(), 0.05)
        assert excinfo.value.code == 2
        assert "error: unknown workload" in capsys.readouterr().err


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "MT" in out
        assert "W10" in out
        assert "least-tlb" in out

    def test_run_prints_table(self, capsys):
        assert main(["run", "FIR", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "policy baseline" in out
        assert "IOMMU hit" in out

    def test_run_writes_json(self, tmp_path, capsys):
        path = tmp_path / "out.json"
        assert main(["run", "FIR", "--scale", "0.05", "--json", str(path)]) == 0
        data = json.loads(path.read_text())
        assert data["workload"] == "FIR"
        assert data["apps"]["1"]["app_name"] == "FIR"

    def test_run_with_preset_and_policy(self, capsys):
        assert main([
            "run", "FIR", "--scale", "0.05",
            "--policy", "least-tlb", "--config", "small-iommu",
        ]) == 0
        assert "least-tlb" in capsys.readouterr().out

    def test_compare(self, capsys):
        assert main([
            "compare", "FIR", "--scale", "0.05",
            "--policies", "baseline,least-tlb",
        ]) == 0
        out = capsys.readouterr().out
        assert "normalized to baseline" in out
        assert "least-tlb" in out

    def test_compare_empty_policies(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["compare", "FIR", "--policies", " "])
        assert excinfo.value.code == 2
        assert "error: no policies" in capsys.readouterr().err

    def test_run_unknown_policy(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "FIR", "--scale", "0.05", "--policy", "psychic"])
        assert excinfo.value.code == 2
        assert "error: unknown policy" in capsys.readouterr().err

    def test_run_bad_fault_plan(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "FIR", "--scale", "0.05", "--faults", "melt-cpu:1.0"])
        assert excinfo.value.code == 2
        assert "error: unknown fault site" in capsys.readouterr().err

    def test_run_seed_recorded_in_json(self, tmp_path):
        path = tmp_path / "out.json"
        assert main([
            "run", "FIR", "--scale", "0.05", "--seed", "7", "--json", str(path),
        ]) == 0
        data = json.loads(path.read_text())
        assert data["metadata"]["seed"] == 7

    def test_run_seed_changes_results(self, tmp_path):
        paths = [tmp_path / "a.json", tmp_path / "b.json"]
        for seed, path in zip(("3", "4"), paths):
            assert main([
                "run", "FIR", "--scale", "0.05", "--seed", seed,
                "--json", str(path),
            ]) == 0
        a, b = (json.loads(p.read_text()) for p in paths)
        assert a["metadata"]["seed"] != b["metadata"]["seed"]
        assert a["events_executed"] != b["events_executed"]

    def test_run_max_events_cap_reports_stall(self, capsys):
        assert main(["run", "FIR", "--scale", "0.05", "--max-events", "50"]) == 3
        err = capsys.readouterr().err
        assert "simulation stalled" in err
        assert "max_events=50 exhausted" in err

    def test_run_max_cycles_truncates(self, capsys):
        assert main(["run", "FIR", "--scale", "0.05", "--max-cycles", "2000"]) == 0
        assert "total cycles 2,000" in capsys.readouterr().out

    def test_run_fault_smoke_with_invariants(self, capsys):
        assert main([
            "run", "FIR", "--scale", "0.05", "--policy", "least-tlb",
            "--faults", "drop-remote:0.01", "--check-invariants",
        ]) == 0
        assert "invariants OK" in capsys.readouterr().out

    def test_characterize(self, capsys):
        assert main(["characterize", "FIR", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "reuse distances" in out
        assert "IOMMU TLB capacity" in out


class TestTelemetryCommands:
    def test_run_trace_writes_chrome_trace(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main([
            "run", "FIR", "--scale", "0.05", "--policy", "least-tlb",
            "--trace", "--trace-out", str(out),
        ]) == 0
        stdout = capsys.readouterr().out
        assert "latency sites (cycles):" in stdout
        assert "wrote Chrome trace" in stdout
        payload = json.loads(out.read_text())
        assert payload["otherData"]["workload"] == "FIR"
        assert any(e["ph"] == "X" for e in payload["traceEvents"])

    def test_run_trace_json_carries_percentiles(self, tmp_path):
        result_path = tmp_path / "result.json"
        assert main([
            "run", "MM", "--scale", "0.05", "--policy", "least-tlb",
            "--trace=0.2", "--trace-out", str(tmp_path / "t.json"),
            "--json", str(result_path),
        ]) == 0
        telemetry = json.loads(result_path.read_text())["telemetry"]
        for site in ("l2_miss", "iommu", "walk", "remote_probe"):
            hist = telemetry["histograms"][site]
            assert hist["count"] > 0
            assert hist["p50"] <= hist["p90"] <= hist["p99"] <= hist["max"]

    def test_run_without_trace_has_no_telemetry_key(self, tmp_path):
        path = tmp_path / "out.json"
        assert main(["run", "FIR", "--scale", "0.05", "--json", str(path)]) == 0
        assert "telemetry" not in json.loads(path.read_text())

    def test_run_rejects_bad_trace_rate(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "FIR", "--scale", "0.05", "--trace=1.5"])
        assert excinfo.value.code == 2
        assert "error:" in capsys.readouterr().err

    def test_trace_subcommand(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main([
            "trace", "FIR", "--scale", "0.05", "--rate", "0.2",
            "--out", str(out),
        ]) == 0
        stdout = capsys.readouterr().out
        assert "traced requests" in stdout
        assert "perfetto" in stdout
        payload = json.loads(out.read_text())
        assert payload["otherData"]["policy"] == "least-tlb"

    def test_trace_rejects_zero_rate(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["trace", "FIR", "--rate", "0"])
        assert excinfo.value.code == 2

    def test_compare_json_export(self, tmp_path, capsys):
        path = tmp_path / "cmp.json"
        assert main([
            "compare", "FIR", "--scale", "0.05",
            "--policies", "baseline,least-tlb", "--json", str(path),
        ]) == 0
        data = json.loads(path.read_text())
        assert data["reference"] == "baseline"
        assert set(data["policies"]) == {"baseline", "least-tlb"}
        assert data["policies"]["baseline"]["speedup"] == 1.0
        assert data["policies"]["least-tlb"]["exec_cycles"] > 0

    def test_characterize_json_export(self, tmp_path):
        path = tmp_path / "char.json"
        assert main([
            "characterize", "FIR", "--scale", "0.05", "--json", str(path),
        ]) == 0
        data = json.loads(path.read_text())
        assert data["iommu_requests"] > 0
        assert 0.0 <= data["capturable_fraction"] <= 1.0
        assert data["apps"]["1"]["app_name"] == "FIR"


class TestLint:
    """The `repro lint` subcommand: exit codes, formats, filters."""

    BAD = "import time\nt = time.time()\n"

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "clean.py"
        path.write_text("x = 1\n")
        assert main(["lint", str(path)]) == 0
        assert "1 file(s) checked: clean" in capsys.readouterr().out

    def test_violations_exit_one(self, tmp_path, capsys):
        path = tmp_path / "bad.py"
        path.write_text(self.BAD)
        assert main(["lint", str(path)]) == 1
        out = capsys.readouterr().out
        assert "D2" in out
        assert f"{path}:2:" in out

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["lint", str(tmp_path / "nope.py")])
        assert excinfo.value.code == 2
        assert "error:" in capsys.readouterr().err

    def test_no_paths_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["lint"])
        assert excinfo.value.code == 2
        assert "error: no paths given" in capsys.readouterr().err

    def test_unknown_rule_is_usage_error(self, tmp_path, capsys):
        path = tmp_path / "clean.py"
        path.write_text("x = 1\n")
        with pytest.raises(SystemExit) as excinfo:
            main(["lint", "--rules", "D99", str(path)])
        assert excinfo.value.code == 2
        assert "error: unknown rule 'D99'" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("D1", "D4", "D8", "G1", "G2"):
            assert rule_id in out

    def test_rules_filter_restricts_reporting(self, tmp_path, capsys):
        path = tmp_path / "bad.py"
        path.write_text("import time\nt = time.time()\ntry:\n    t()\nexcept:\n    pass\n")
        assert main(["lint", "--rules", "G1", str(path)]) == 1
        out = capsys.readouterr().out
        assert "G1" in out
        assert "D2" not in out

    def test_json_format(self, tmp_path, capsys):
        path = tmp_path / "bad.py"
        path.write_text(self.BAD)
        assert main(["lint", "--format", "json", str(path)]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["schema"] == 2
        assert report["total_violations"] == 1
        assert report["by_rule"]["D2"] == 1
        assert report["violations"][0]["rule"] == "D2"

    def test_output_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(self.BAD)
        out = tmp_path / "report.json"
        assert main(["lint", "--format", "json", "--output", str(out), str(bad)]) == 1
        captured = capsys.readouterr()
        assert f"wrote {out}" in captured.err
        assert json.loads(out.read_text())["total_violations"] == 1

    def test_lint_src_tree_clean(self, capsys):
        import repro

        src = Path(repro.__file__).resolve().parents[1]
        assert main(["lint", str(src)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_update_baseline_then_gate(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(self.BAD)
        base = tmp_path / "base.json"
        args = ["lint", str(bad), "--baseline", str(base)]
        assert main(args + ["--update-baseline"]) == 0
        assert main(args) == 0  # the finding is grandfathered
        assert "1 baselined" in capsys.readouterr().out
        bad.write_text(self.BAD + "u = time.time()\n")
        assert main(args) == 1  # ...but a *new* finding still fails

    def test_sarif_format(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(self.BAD)
        assert main(["lint", "--format", "sarif", str(bad)]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        assert doc["runs"][0]["results"][0]["ruleId"] == "D2"

    def test_changed_skips_fixture_dirs(self, tmp_path, capsys, monkeypatch):
        import subprocess

        monkeypatch.chdir(tmp_path)
        subprocess.run(["git", "init", "-q"], check=True)
        subprocess.run(
            ["git", "-c", "user.email=t@t", "-c", "user.name=t",
             "commit", "-q", "--allow-empty", "-m", "seed"], check=True,
        )
        (tmp_path / "bad.py").write_text(self.BAD)
        fixtures = tmp_path / "fixtures"
        fixtures.mkdir()
        (fixtures / "worse.py").write_text(self.BAD)
        assert main(["lint", "--changed"]) == 1
        out = capsys.readouterr().out
        assert "bad.py" in out
        assert "worse.py" not in out  # fixture dirs stay excluded
