"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import CONFIG_PRESETS, main, resolve_config, resolve_workload
from repro.config.presets import baseline_config


class TestResolvers:
    def test_resolve_config_presets(self):
        for name in CONFIG_PRESETS:
            assert resolve_config(name) is not None

    def test_resolve_config_unknown(self):
        with pytest.raises(SystemExit, match="unknown config preset"):
            resolve_config("quantum")

    def test_resolve_application(self):
        workload = resolve_workload("mm", baseline_config(), 0.05)
        assert workload.kind == "single"

    def test_resolve_multi_workload(self):
        workload = resolve_workload("W1", baseline_config(), 0.05)
        assert workload.kind == "multi"
        assert len(workload.pids) == 4

    def test_resolve_mix_workload(self):
        workload = resolve_workload("W17", baseline_config(), 0.05)
        assert len(workload.pids) == 6

    def test_resolve_npz_file(self, tmp_path):
        from repro.workloads.multi_app import build_single_app_workload
        from repro.workloads.trace_io import save_workload

        path = save_workload(
            build_single_app_workload("FIR", baseline_config(), scale=0.05),
            tmp_path / "w.npz",
        )
        workload = resolve_workload(str(path), baseline_config(), 0.05)
        assert workload.name == "FIR"

    def test_resolve_unknown(self):
        with pytest.raises(SystemExit, match="unknown workload"):
            resolve_workload("nope", baseline_config(), 0.05)


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "MT" in out
        assert "W10" in out
        assert "least-tlb" in out

    def test_run_prints_table(self, capsys):
        assert main(["run", "FIR", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "policy baseline" in out
        assert "IOMMU hit" in out

    def test_run_writes_json(self, tmp_path, capsys):
        path = tmp_path / "out.json"
        assert main(["run", "FIR", "--scale", "0.05", "--json", str(path)]) == 0
        data = json.loads(path.read_text())
        assert data["workload"] == "FIR"
        assert data["apps"]["1"]["app_name"] == "FIR"

    def test_run_with_preset_and_policy(self, capsys):
        assert main([
            "run", "FIR", "--scale", "0.05",
            "--policy", "least-tlb", "--config", "small-iommu",
        ]) == 0
        assert "least-tlb" in capsys.readouterr().out

    def test_compare(self, capsys):
        assert main([
            "compare", "FIR", "--scale", "0.05",
            "--policies", "baseline,least-tlb",
        ]) == 0
        out = capsys.readouterr().out
        assert "normalized to baseline" in out
        assert "least-tlb" in out

    def test_compare_empty_policies(self):
        with pytest.raises(SystemExit, match="no policies"):
            main(["compare", "FIR", "--policies", " "])

    def test_characterize(self, capsys):
        assert main(["characterize", "FIR", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "reuse distances" in out
        assert "IOMMU TLB capacity" in out
