"""Path failures must follow the CLI error convention (docs/robustness.md):
exit code 2 and a one-line ``error:`` diagnostic — never a traceback.
"""

import pytest

from repro.cli import main


class TestUnwritableOutput:
    def test_trace_out_in_missing_directory(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([
                "trace", "FIR", "--scale", "0.02",
                "--out", "/nonexistent-dir/trace.json",
            ])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "Traceback" not in err

    def test_bench_json_in_missing_directory(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([
                "bench", "--benches", "fig02_baseline_hit_rates",
                "--scale", "0.02", "--jobs", "1",
                "--json", "/nonexistent-dir/report.json",
            ])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "Traceback" not in err


class TestMissingInput:
    def test_run_missing_npz_workload(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "/nonexistent-dir/workload.npz", "--scale", "0.02"])
        assert excinfo.value.code == 2
        assert "error:" in capsys.readouterr().err

    def test_trace_missing_npz_workload(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["trace", "/nonexistent-dir/workload.npz", "--scale", "0.02"])
        assert excinfo.value.code == 2
        assert "error:" in capsys.readouterr().err


class TestFunctionalBackendCli:
    def test_run_functional_backend(self):
        assert main([
            "run", "FIR", "--scale", "0.02", "--backend", "functional",
        ]) == 0

    def test_run_functional_backend_out_of_scope(self, capsys):
        # Fault injection is outside the fast path's scope: refuse with
        # the CLI convention instead of silently running without faults.
        with pytest.raises(SystemExit) as excinfo:
            main([
                "run", "FIR", "--scale", "0.02", "--backend", "functional",
                "--faults", "drop-remote:0.01",
            ])
        assert excinfo.value.code == 2
        assert "error: --backend functional" in capsys.readouterr().err

    def test_run_vectorized_backend(self):
        assert main([
            "run", "FIR", "--scale", "0.02", "--backend", "vectorized",
        ]) == 0


class TestShardedCli:
    def test_run_sharded(self):
        assert main([
            "run", "W1", "--scale", "0.02", "--backend", "vectorized",
            "--shards", "2",
        ]) == 0

    def test_run_rejects_zero_shards(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "FIR", "--scale", "0.02", "--shards", "0"])
        assert excinfo.value.code == 2
        assert "error:" in capsys.readouterr().err

    def test_run_rejects_global_order_options_with_shards(self, capsys):
        # Snapshots need one global event order; sharding must refuse
        # loudly rather than approximate them per-shard.
        with pytest.raises(SystemExit) as excinfo:
            main([
                "run", "FIR", "--scale", "0.02", "--shards", "2",
                "--snapshot-interval", "100",
            ])
        assert excinfo.value.code == 2
        assert "error: --shards 2" in capsys.readouterr().err
