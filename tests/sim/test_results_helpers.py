"""Unit tests for the SimulationResult/AppResult helper surface."""

import pytest

from repro.sim.results import AppResult, SimulationResult, Snapshot


def app(pid, name="A", exec_cycles=1000, instructions=50_000, counters=None):
    return AppResult(
        pid=pid, app_name=name, gpu_ids=(pid - 1,),
        instructions=instructions, runs=10, accesses=20,
        exec_cycles=exec_cycles, counters=counters or {},
        mean_translation_latency=12.5,
    )


def result(apps, policy="p"):
    return SimulationResult(
        workload_name="w", workload_kind="multi", policy_name=policy,
        total_cycles=5000, apps={a.pid: a for a in apps},
        iommu_counters={}, walker_counters={}, walker_queue_wait_mean=0.0,
    )


class TestAppResult:
    def test_ipc(self):
        assert app(1, exec_cycles=1000, instructions=50_000).ipc == 50.0

    def test_ipc_zero_cycles(self):
        assert app(1, exec_cycles=0).ipc == 0.0

    def test_hit_rates_from_counters(self):
        a = app(1, counters={"l1_hit": 9, "l1_miss": 1, "l2_hit": 1, "l2_miss": 3})
        assert a.l1_hit_rate == pytest.approx(0.9)
        assert a.l2_hit_rate == pytest.approx(0.25)
        assert a.iommu_hit_rate == 0.0  # no lookups recorded

    def test_remote_rate_relative_to_iommu_lookups(self):
        a = app(1, counters={"iommu_lookup": 100, "remote_hit": 5})
        assert a.remote_hit_rate == pytest.approx(0.05)

    def test_mpki(self):
        a = app(1, instructions=100_000, counters={"l2_miss": 50})
        assert a.mpki == pytest.approx(0.5)


class TestSimulationResult:
    def test_exec_cycles_is_slowest_app(self):
        r = result([app(1, exec_cycles=500), app(2, exec_cycles=900)])
        assert r.exec_cycles == 900

    def test_exec_cycles_empty(self):
        r = result([app(1)])
        r.apps = {}
        assert r.exec_cycles == 0

    def test_speedup_vs(self):
        fast = result([app(1, exec_cycles=500)])
        slow = result([app(1, exec_cycles=1000)])
        assert fast.speedup_vs(slow) == pytest.approx(2.0)
        assert slow.speedup_vs(fast) == pytest.approx(0.5)

    def test_per_app_speedup(self):
        base = result([app(1, exec_cycles=1000), app(2, exec_cycles=400)])
        other = result([app(1, exec_cycles=500), app(2, exec_cycles=800)])
        speedups = other.per_app_speedup_vs(base)
        assert speedups[1] == pytest.approx(2.0)
        assert speedups[2] == pytest.approx(0.5)

    def test_mean_over_apps(self):
        r = result([
            app(1, counters={"l2_hit": 1, "l2_miss": 1}),
            app(2, counters={"l2_hit": 3, "l2_miss": 1}),
        ])
        assert r.mean_over_apps("l2_hit_rate") == pytest.approx(0.625)

    def test_pids_sorted(self):
        r = result([app(3), app(1), app(2)])
        assert r.pids == [1, 2, 3]

    def test_apps_named(self):
        r = result([app(1, name="MT"), app(2, name="MT"), app(3, name="ST")])
        assert [a.pid for a in r.apps_named("MT")] == [1, 2]


class TestSnapshot:
    def test_duplication_fractions(self):
        snap = Snapshot(
            cycle=0, l2_resident=200, l2_duplicated=50, l2_also_in_iommu=120,
            iommu_resident=100, iommu_owner_counts=(25, 25, 25, 25),
        )
        assert snap.l2_duplication_fraction == pytest.approx(0.25)
        assert snap.cross_level_duplication_fraction == pytest.approx(0.6)

    def test_empty_snapshot_fractions(self):
        snap = Snapshot(
            cycle=0, l2_resident=0, l2_duplicated=0, l2_also_in_iommu=0,
            iommu_resident=0, iommu_owner_counts=(0, 0, 0, 0),
        )
        assert snap.l2_duplication_fraction == 0.0
        assert snap.cross_level_duplication_fraction == 0.0
