"""End-to-end archive workflow: generate → save → reload → simulate →
export — the full reproducibility loop a downstream user would run."""

import json

from repro.config.presets import baseline_config
from repro.reporting.export import save_result_json
from repro.sim.system import MultiGPUSystem
from repro.workloads.multi_app import build_multi_app_workload
from repro.workloads.trace_io import load_workload, save_workload


def test_archive_and_replay_workflow(tmp_path):
    config = baseline_config()
    workload = build_multi_app_workload("W2", config, scale=0.05)

    archive = save_workload(workload, tmp_path / "w2.npz")
    replayed = load_workload(archive)

    result = MultiGPUSystem(config, replayed, "least-tlb").run()
    report = save_result_json(result, tmp_path / "w2-least.json")

    data = json.loads(report.read_text())
    assert data["workload"] == "W2"
    assert data["policy"] == "least-tlb"
    assert set(data["apps"]) == {"1", "2", "3", "4"}
    for app in data["apps"].values():
        assert app["exec_cycles"] > 0
        assert 0.0 <= app["l2_hit_rate"] <= 1.0

    # The archive is self-contained: a second reload gives identical sims.
    again = MultiGPUSystem(config, load_workload(archive), "least-tlb").run()
    assert again.total_cycles == result.total_cycles
