"""Tests for the parallel experiment runner (bench matrix, dedup, cache)."""

import pytest

from repro.config.presets import baseline_config
from repro.reporting.export import result_to_dict
from repro.sim.cache import ResultCache
from repro.sim.parallel import (
    BENCH_MATRIX,
    JobSpec,
    bench_names,
    dedupe_jobs,
    expand_matrix,
    matrix_summary,
    run_matrix,
    select_benches,
)

SCALE = 0.05


class TestMatrixDeclaration:
    def test_every_bench_expands(self):
        for name, builder in BENCH_MATRIX.items():
            jobs = builder(0.1, None)
            assert jobs, name
            assert all(isinstance(j, JobSpec) for j in jobs), name

    def test_select_all(self):
        assert select_benches(None) == bench_names()

    def test_select_glob_and_substring(self):
        assert select_benches("fig1*") == [
            n for n in bench_names() if n.startswith("fig1")
        ]
        assert select_benches("mix") == ["fig22_mix_workload"]

    def test_select_unknown_raises_keyerror(self):
        with pytest.raises(KeyError):
            select_benches("no-such-bench")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            JobSpec("bogus", "MM")


class TestDedup:
    def test_fig14_and_fig15_share_all_runs(self):
        pairs = expand_matrix(
            ["fig14_single_app_perf", "fig15_single_app_hit_rates"], scale=SCALE
        )
        unique = dedupe_jobs(pairs)
        assert len(unique) == len(pairs) // 2
        for _spec, _fp, _digest, benches in unique:
            assert benches == (
                "fig14_single_app_perf",
                "fig15_single_app_hit_rates",
            )

    def test_distinct_configs_do_not_collapse(self):
        a = JobSpec("single", "MM", scale=SCALE)
        b = JobSpec("single", "MM", scale=SCALE, config=baseline_config().derive(num_gpus=8))
        unique = dedupe_jobs([("x", a), ("x", b)])
        assert len(unique) == 2

    def test_none_config_equals_explicit_baseline(self):
        a = JobSpec("single", "MM", scale=SCALE, config=None)
        b = JobSpec("single", "MM", scale=SCALE, config=baseline_config())
        assert len(dedupe_jobs([("x", a), ("y", b)])) == 1


class TestRunMatrix:
    @pytest.fixture()
    def cache(self, tmp_path):
        return ResultCache(tmp_path / "cache")

    def _pairs(self):
        return [
            ("t", JobSpec("single", "MM", scale=SCALE)),
            ("t", JobSpec("single", "MM", "least-tlb", scale=SCALE)),
            ("u", JobSpec("single", "MM", scale=SCALE)),  # duplicate of #1
        ]

    def test_in_process_run_and_warm_rerun(self, cache):
        outcomes = run_matrix(self._pairs(), workers=1, cache=cache)
        assert len(outcomes) == 2  # dedup collapsed the duplicate
        assert all(not o.cached for o in outcomes)
        assert cache.entry_count() == 2

        warm = run_matrix(self._pairs(), workers=1, cache=cache)
        assert all(o.cached for o in warm)
        summary = matrix_summary(warm)
        assert summary["cache_hits"] == 2 and summary["simulated"] == 0
        # Cached results are bit-identical to the simulated ones.
        cold = {o.digest: o for o in outcomes}
        for o in warm:
            assert result_to_dict(o.result, include_stream=True) == result_to_dict(
                cold[o.digest].result, include_stream=True
            )

    def test_pool_path_matches_in_process(self, tmp_path):
        pairs = self._pairs()
        serial_cache = ResultCache(tmp_path / "serial")
        pool_cache = ResultCache(tmp_path / "pool")
        serial = run_matrix(pairs, workers=1, cache=serial_cache)
        # workers=2 with >=2 misses exercises the supervised-worker path.
        pooled = run_matrix(pairs, workers=2, cache=pool_cache)
        assert {o.digest for o in pooled} == {o.digest for o in serial}
        by_digest = {o.digest: o for o in serial}
        for o in pooled:
            assert result_to_dict(o.result, include_stream=True) == result_to_dict(
                by_digest[o.digest].result, include_stream=True
            )
        assert pool_cache.entry_count() == 2

    def test_progress_callback_sees_hits_and_simulations(self, cache):
        messages = []
        run_matrix(self._pairs(), workers=1, cache=cache, progress=messages.append)
        assert any(m.startswith("simulate") for m in messages)
        messages.clear()
        run_matrix(self._pairs(), workers=1, cache=cache, progress=messages.append)
        assert all(m.startswith("cache hit") for m in messages)

    def test_disabled_cache_always_simulates(self, tmp_path):
        cache = ResultCache(tmp_path / "off", enabled=False)
        pairs = self._pairs()[:1]
        first = run_matrix(pairs, workers=1, cache=cache)
        second = run_matrix(pairs, workers=1, cache=cache)
        assert not first[0].cached and not second[0].cached
        assert cache.entry_count() == 0
