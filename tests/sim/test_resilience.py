"""Tests for the resilient matrix runner (``repro.sim.resilience``).

Covers the policy maths (deadlines, seeded backoff), the chaos-state
victim selection, the sweep journal's checkpoint/resume contract, and —
through small real matrices — the supervised execution path: worker
kills retried to bit-identical results, hung jobs killed at the hard
deadline, failures degraded into manifests instead of aborts.
"""

import json

import pytest

from repro.faults.plan import FaultPlan, FaultPlanError
from repro.reporting.export import result_to_dict
from repro.sim.cache import ResultCache
from repro.sim.parallel import (
    JobSpec,
    failed_jobs_manifest,
    families_without_results,
    matrix_summary,
    run_matrix,
)
from repro.sim.resilience import (
    JOURNAL_NAME,
    ChaosState,
    ResiliencePolicy,
    SweepJournal,
    default_hard_timeout,
)

SCALE = 0.05


def _pairs():
    return [
        ("t", JobSpec("single", "MM", scale=SCALE)),
        ("t", JobSpec("single", "MM", "least-tlb", scale=SCALE)),
    ]


def _result_dicts(outcomes):
    return {
        o.digest: result_to_dict(o.result, include_stream=True)
        for o in outcomes
        if o.result is not None
    }


class TestPolicy:
    def test_default_hard_timeout_scales(self):
        assert default_hard_timeout(0.3, "event") == 270.0
        assert default_hard_timeout(0.3, "functional") == 135.0
        # Small scales keep a floor so startup cost never trips it.
        assert default_hard_timeout(0.01, "event") == 60.0

    def test_deadlines_soft_defaults_to_half(self):
        policy = ResiliencePolicy(hard_timeout=10.0)
        assert policy.deadlines_for(JobSpec("single", "MM", scale=SCALE)) == (5.0, 10.0)

    def test_deadlines_derive_from_spec(self):
        soft, hard = ResiliencePolicy().deadlines_for(
            JobSpec("single", "MM", scale=0.3, backend="functional")
        )
        assert hard == default_hard_timeout(0.3, "functional")
        assert soft == hard / 2

    def test_soft_never_exceeds_hard(self):
        policy = ResiliencePolicy(soft_timeout=50.0, hard_timeout=10.0)
        soft, hard = policy.deadlines_for(JobSpec("single", "MM", scale=SCALE))
        assert soft <= hard

    def test_validation(self):
        with pytest.raises(ValueError):
            ResiliencePolicy(retries=-1)
        with pytest.raises(ValueError):
            ResiliencePolicy(hard_timeout=0)
        with pytest.raises(ValueError):
            ResiliencePolicy(soft_timeout=-1)

    def test_backoff_is_pure_and_grows(self):
        a = ResiliencePolicy(backoff_seed=3)
        b = ResiliencePolicy(backoff_seed=3)
        delays_a = [a.backoff_delay("digest", n) for n in (1, 2, 3)]
        delays_b = [b.backoff_delay("digest", n) for n in (1, 2, 3)]
        assert delays_a == delays_b  # no wall-clock, no global RNG
        assert delays_a[0] < delays_a[1] < delays_a[2]  # exponential base
        # Different seed or digest shifts the jitter stream.
        assert ResiliencePolicy(backoff_seed=4).backoff_delay("digest", 1) != delays_a[0]
        assert a.backoff_delay("other", 1) != delays_a[0]

    def test_backoff_zero_base_disables_delay(self):
        assert ResiliencePolicy(backoff_base=0).backoff_delay("d", 1) == 0.0


class TestChaosState:
    def test_from_plan_normalises(self):
        assert ChaosState.from_plan(None) is None
        assert ChaosState.from_plan(FaultPlan()) is None
        state = ChaosState.from_plan("kill-worker:2")
        assert state is not None and state.kills == 2
        assert ChaosState.from_plan(state) is state

    def test_rejects_protocol_sites(self):
        with pytest.raises(FaultPlanError, match="runner-level"):
            ChaosState.from_plan("drop-remote:0.5")

    def test_kill_and_fail_are_transient(self):
        state = ChaosState.from_plan("kill-worker:1,fail-job:1")
        assert state.marks(0, 1) == (True, True, 0)   # first attempt: both fire
        assert state.marks(0, 2) == (False, False, 0)  # retry is clean
        assert state.marks(1, 1) == (False, False, 0)  # budget spent on job 0

    def test_slow_worker_is_persistent(self):
        state = ChaosState.from_plan("slow-worker:1:500")
        assert state.marks(0, 1) == (False, False, 500)
        assert state.marks(0, 2) == (False, False, 500)  # a hung job stays hung
        assert state.marks(1, 1) == (False, False, 0)

    def test_needs_subprocess(self):
        assert ChaosState.from_plan("kill-worker:1").needs_subprocess()
        assert ChaosState.from_plan("slow-worker:1:10").needs_subprocess()
        assert not ChaosState.from_plan("fail-job:1").needs_subprocess()
        assert not ChaosState.from_plan("corrupt-cache:1").needs_subprocess()


class TestSweepJournal:
    def test_lives_next_to_cache_but_outside_entry_count(self, tmp_path):
        cache = ResultCache(tmp_path)
        journal = SweepJournal.for_cache(cache)
        assert journal.path == tmp_path / JOURNAL_NAME
        journal.open(resume=False)
        journal.record(digest="d1", label="a", benches=("t",), status="ok", attempts=1)
        journal.close()
        assert cache.entry_count() == 0  # .jsonl never counted as an entry

    def test_round_trip_keeps_last_record_per_digest(self, tmp_path):
        journal = SweepJournal(tmp_path / "j.jsonl")
        journal.open(resume=False)
        journal.record(digest="d1", label="a", benches=("t",), status="failed",
                       attempts=2, error={"class": "X", "message": "boom"})
        journal.record(digest="d1", label="a", benches=("t",), status="ok", attempts=3)
        journal.close()
        records = journal.load()
        assert records["d1"]["status"] == "ok"
        assert records["d1"]["attempts"] == 3

    def test_load_tolerates_truncated_tail(self, tmp_path):
        journal = SweepJournal(tmp_path / "j.jsonl")
        journal.open(resume=False)
        journal.record(digest="d1", label="a", benches=("t",), status="ok", attempts=1)
        journal.close()
        with journal.path.open("a") as handle:
            handle.write('{"event": "job", "digest": "d2", "stat')  # killed mid-append
        records = journal.load()
        assert set(records) == {"d1"}

    def test_resume_appends_instead_of_truncating(self, tmp_path):
        journal = SweepJournal(tmp_path / "j.jsonl")
        journal.open(resume=False)
        journal.record(digest="d1", label="a", benches=("t",), status="ok", attempts=1)
        journal.close()
        journal.open(resume=True)
        journal.record(digest="d2", label="b", benches=("t",), status="ok", attempts=1)
        journal.close()
        assert set(journal.load()) == {"d1", "d2"}

    def test_missing_file_loads_empty(self, tmp_path):
        assert SweepJournal(tmp_path / "absent.jsonl").load() == {}


class TestSupervisedChaos:
    """Real (small) matrices through the per-job worker supervisor."""

    def test_worker_kill_retried_to_identical_results(self, tmp_path):
        clean = run_matrix(_pairs(), workers=2, cache=ResultCache(tmp_path / "a"))
        chaotic = run_matrix(
            _pairs(), workers=2, cache=ResultCache(tmp_path / "b"),
            chaos="kill-worker:1",
            policy=ResiliencePolicy(retries=1, backoff_base=0.01),
        )
        assert _result_dicts(chaotic) == _result_dicts(clean)
        summary = matrix_summary(chaotic)
        assert summary["worker_crashes"] == 1
        assert summary["retries"] == 1
        assert summary["failed"] == 0

    def test_hung_worker_killed_at_hard_deadline(self, tmp_path):
        outcomes = run_matrix(
            _pairs(), workers=2, cache=ResultCache(tmp_path / "c"),
            chaos="slow-worker:1:30000",
            policy=ResiliencePolicy(retries=0, hard_timeout=2.0),
        )
        by_status = {o.status for o in outcomes}
        assert by_status == {"ok", "timed_out"}
        (failure,) = failed_jobs_manifest(outcomes)
        assert failure["status"] == "timed_out"
        assert failure["error_class"] == "JobTimeout"
        assert "hard deadline" in failure["error"]
        summary = matrix_summary(outcomes)
        assert summary["timed_out"] == 1

    def test_transient_failure_burns_retry_then_succeeds(self, tmp_path):
        outcomes = run_matrix(
            _pairs(), workers=2, cache=ResultCache(tmp_path / "d"),
            chaos="fail-job:1",
            policy=ResiliencePolicy(retries=1, backoff_base=0.01),
        )
        assert all(o.status == "ok" for o in outcomes)
        assert {o.attempts for o in outcomes} == {1, 2}
        assert "ChaosFault" in [e for o in outcomes for e in o.attempt_errors]

    def test_exhausted_retries_degrade_not_abort(self, tmp_path):
        outcomes = run_matrix(
            _pairs(), workers=2, cache=ResultCache(tmp_path / "e"),
            chaos="fail-job:1",
            policy=ResiliencePolicy(retries=0),
        )
        assert len(outcomes) == 2  # partial results, no exception
        (failure,) = [o for o in outcomes if o.result is None]
        assert failure.status == "failed"
        assert failure.error == {
            "class": "ChaosFault", "message": "injected transient worker failure",
        }
        # The healthy job keeps the family alive.
        assert families_without_results(_pairs(), outcomes) == []

    def test_family_with_zero_results_is_reported(self, tmp_path):
        pairs = _pairs()
        outcomes = run_matrix(
            pairs, workers=2, cache=ResultCache(tmp_path / "f"),
            chaos="fail-job:2",
            policy=ResiliencePolicy(retries=0),
        )
        assert all(o.result is None for o in outcomes)
        assert families_without_results(pairs, outcomes) == ["t"]

    def test_chaos_is_deterministic(self, tmp_path):
        def one(tag):
            return run_matrix(
                _pairs(), workers=2, cache=ResultCache(tmp_path / tag),
                chaos="kill-worker:1,fail-job:1",
                policy=ResiliencePolicy(retries=2, backoff_base=0.01, backoff_seed=7),
            )

        first, second = one("g1"), one("g2")
        assert _result_dicts(first) == _result_dicts(second)
        assert [(o.digest, o.status, o.attempts, o.attempt_errors) for o in first] \
            == [(o.digest, o.status, o.attempts, o.attempt_errors) for o in second]


class TestJournalResume:
    def test_failed_job_rerun_on_resume(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        journal = SweepJournal.for_cache(cache)
        first = run_matrix(
            _pairs(), workers=2, cache=cache, journal=journal,
            chaos="fail-job:1", policy=ResiliencePolicy(retries=0),
        )
        assert sum(1 for o in first if o.result is None) == 1
        records = journal.load()
        assert {r["status"] for r in records.values()} == {"ok", "failed"}

        resumed = run_matrix(
            _pairs(), workers=2, cache=cache, journal=journal, resume=True,
        )
        assert all(o.result is not None for o in resumed)
        # The healthy job came from the cache; only the failure re-ran.
        assert sum(1 for o in resumed if o.cached) == 1
        assert {r["status"] for r in journal.load().values()} == {"ok"}

    def test_journal_lines_are_sorted_json(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        journal = SweepJournal.for_cache(cache)
        run_matrix(_pairs()[:1], workers=1, cache=cache, journal=journal)
        lines = journal.path.read_text().splitlines()
        for line in lines:
            event = json.loads(line)
            assert line == json.dumps(event, sort_keys=True)


class TestCrossBackendRetryEquivalence:
    """A transient fail-then-succeed must be bit-identical to first-try
    success on *both* backends — retries never perturb results."""

    @pytest.mark.parametrize("backend", ["event", "functional"])
    def test_retry_equivalence(self, tmp_path, backend):
        pairs = [("t", JobSpec("single", "MM", scale=SCALE, backend=backend))]
        clean = run_matrix(pairs, workers=1, cache=ResultCache(tmp_path / "clean"))
        retried = run_matrix(
            pairs, workers=1, cache=ResultCache(tmp_path / "retried"),
            chaos="fail-job:1",
            policy=ResiliencePolicy(retries=1, backoff_base=0.01),
        )
        (outcome,) = retried
        assert outcome.attempts == 2
        assert outcome.attempt_errors[0] == "ChaosFault"
        assert _result_dicts(retried) == _result_dicts(clean)


class TestChaosCacheCorruption:
    def test_corrupted_entry_quarantined_and_resimulated(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        first = run_matrix(_pairs(), workers=1, cache=cache)
        with pytest.warns(Warning, match="quarantined"):
            second = run_matrix(
                _pairs(), workers=1, cache=cache, chaos="corrupt-cache:1",
            )
        assert cache.corruptions == 1
        assert len(list(cache.cache_dir.glob("*.corrupt"))) == 1
        # The re-simulated job reproduces the original result bit-for-bit.
        assert _result_dicts(second) == _result_dicts(first)
        assert sum(1 for o in second if not o.cached) == 1
