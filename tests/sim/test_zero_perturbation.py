"""The zero-perturbation guarantee.

The robustness subsystem (fault hooks, hardening timers, watchdog,
invariant checker) must be invisible when disabled: a fault-free run of
the instrumented code produces **bit-identical** results to the
pre-instrumentation simulator.  The goldens in ``tests/golden/`` pin
that behaviour — ``events_executed`` is part of the comparison, so even
one extra scheduled event breaks these tests.

If a change legitimately alters simulation behaviour, regenerate the
goldens with::

    PYTHONPATH=src python -m repro.cli run MM --policy least-tlb \\
        --scale 0.05 --json tests/golden/mm_least_tlb_scale005.json
    PYTHONPATH=src python -m repro.cli run W8 --policy baseline \\
        --scale 0.05 --json tests/golden/w8_baseline_scale005.json

and justify the diff in the commit message.
"""

import json
from pathlib import Path

import pytest

from repro.config.presets import baseline_config
from repro.faults import FaultPlan
from repro.reporting import result_to_dict
from repro.sim.system import MultiGPUSystem
from repro.workloads.multi_app import (
    build_multi_app_workload,
    build_single_app_workload,
)

GOLDEN_DIR = Path(__file__).resolve().parents[1] / "golden"

CASES = {
    "mm_least_tlb_scale005.json": ("MM", "least-tlb", build_single_app_workload),
    "w8_baseline_scale005.json": ("W8", "baseline", build_multi_app_workload),
}


def run_case(name, policy, builder, **system_kwargs):
    config = baseline_config()
    workload = builder(name, config, scale=0.05)
    system = MultiGPUSystem(config, workload, policy, **system_kwargs)
    result = system.run()
    # JSON round-trip normalises tuples/keys exactly like the golden file.
    return json.loads(json.dumps(result_to_dict(result)))


class TestGoldenRegression:
    @pytest.mark.parametrize("golden", sorted(CASES))
    def test_fault_free_run_matches_golden(self, golden):
        name, policy, builder = CASES[golden]
        expected = json.loads((GOLDEN_DIR / golden).read_text())
        assert run_case(name, policy, builder) == expected

    @pytest.mark.parametrize("golden", sorted(CASES))
    def test_empty_fault_plan_is_no_fault_plan(self, golden):
        """An empty/zero-rate plan must not build an injector, arm
        hardening, or perturb a single event."""
        name, policy, builder = CASES[golden]
        expected = json.loads((GOLDEN_DIR / golden).read_text())
        for faults in ("", FaultPlan(), "drop-remote:0.0"):
            assert run_case(name, policy, builder, faults=faults) == expected


class TestDisabledSubsystemState:
    def test_fault_free_system_holds_no_robustness_state(self):
        config = baseline_config()
        workload = build_single_app_workload("MM", config, scale=0.05)
        system = MultiGPUSystem(config, workload, "least-tlb")
        assert system.faults is None
        assert system.hardening is None
        assert system.watchdog is None
        assert system.invariants is None
        assert system.iommu.walkers.injector is None
        assert system.iommu.pri.injector is None
        assert system.iommu.pri.hardening is None

    def test_active_plan_arms_everything(self):
        config = baseline_config()
        workload = build_single_app_workload("MM", config, scale=0.05)
        system = MultiGPUSystem(config, workload, "least-tlb", faults="flip-tlb:0.5")
        assert system.faults is not None
        assert system.hardening is not None
        assert system.watchdog is not None
        assert system.iommu.walkers.injector is system.faults
        assert system.iommu.pri.injector is system.faults

    def test_determinism_across_repeat_runs(self):
        name, policy, builder = CASES["mm_least_tlb_scale005.json"]
        assert run_case(name, policy, builder) == run_case(name, policy, builder)


class TestTelemetryZeroPerturbation:
    """The telemetry subsystem honours the same contract as fault
    injection: no hub by default, and even an *enabled* span tracer is
    invisible to the simulation — it only annotates existing events."""

    def test_default_system_holds_no_telemetry_state(self):
        config = baseline_config()
        workload = build_single_app_workload("MM", config, scale=0.05)
        system = MultiGPUSystem(config, workload, "least-tlb")
        assert system.telemetry is None
        assert system.iommu.walkers.telemetry is None
        assert system.iommu.pri.telemetry is None

    @pytest.mark.parametrize("golden", sorted(CASES))
    def test_disabled_telemetry_matches_golden(self, golden):
        name, policy, builder = CASES[golden]
        expected = json.loads((GOLDEN_DIR / golden).read_text())
        assert run_case(name, policy, builder) == expected

    @pytest.mark.parametrize("golden", sorted(CASES))
    def test_span_tracing_is_event_identical(self, golden):
        """With tracing enabled (but no timeline), the simulation result —
        including ``events_executed`` — is bit-identical; only the
        ``telemetry`` block is added."""
        from repro.telemetry import TelemetryConfig

        name, policy, builder = CASES[golden]
        expected = json.loads((GOLDEN_DIR / golden).read_text())
        traced = run_case(
            name, policy, builder,
            telemetry=TelemetryConfig(sample_rate=0.1),
        )
        telemetry = traced.pop("telemetry")
        assert traced == expected
        assert telemetry["traces"] > 0
