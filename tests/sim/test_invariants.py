"""Tests for the opt-in runtime invariant checker."""

import pytest

from repro.config.presets import baseline_config
from repro.faults import InvariantChecker, InvariantViolation
from repro.gpu.ats import ATSRequest
from repro.sim.system import MultiGPUSystem
from repro.workloads.multi_app import (
    build_multi_app_workload,
    build_single_app_workload,
)

ALL_POLICIES = ["baseline", "least-tlb", "tlb-probing", "exclusive"]


def run_checked(workload_name, policy, *, multi=False, scale=0.1):
    config = baseline_config()
    builder = build_multi_app_workload if multi else build_single_app_workload
    workload = builder(workload_name, config, scale=scale)
    system = MultiGPUSystem(config, workload, policy, check_invariants=True)
    result = system.run()
    return system, result


class TestCleanRunsPass:
    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_single_app_workload(self, policy):
        system, result = run_checked("MM", policy)
        assert system.invariants.checks_run > 0
        assert result.metadata["invariant_checks"] == system.invariants.checks_run

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_multi_app_workload(self, policy):
        system, result = run_checked("W8", policy, multi=True)
        assert system.invariants.checks_run > 0

    def test_exclusivity_audited_only_for_least_inclusive(self):
        system, _ = run_checked("MM", "baseline")
        assert system.invariants.max_overlap == 0  # audit never ran
        system, result = run_checked("MM", "exclusive")
        assert result.metadata["invariant_max_overlap"] == system.invariants.max_overlap


class TestViolationsAreCaught:
    def _system(self, policy="least-tlb"):
        config = baseline_config()
        workload = build_single_app_workload("MM", config, scale=0.05)
        return MultiGPUSystem(config, workload, policy, check_invariants=True)

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            InvariantChecker(self._system(), interval=0)

    def test_time_monotonicity(self):
        system = self._system()
        system.invariants._last_now = 10**9
        with pytest.raises(InvariantViolation, match="time moved backwards"):
            system.invariants.check()

    def test_pending_served_without_result(self):
        system = self._system()
        request = ATSRequest(gpu_id=0, pid=1, vpn=5, issue_time=0)
        entry = system.iommu.pending.create(request)
        entry.served = True  # but result_ppn is still None
        entry.waiters.clear()
        with pytest.raises(InvariantViolation, match="served without a result"):
            system.invariants.check()

    def test_pending_unserved_without_waiters(self):
        system = self._system()
        request = ATSRequest(gpu_id=0, pid=1, vpn=5, issue_time=0)
        entry = system.iommu.pending.create(request)
        entry.waiters.clear()
        with pytest.raises(InvariantViolation, match="no waiters"):
            system.invariants.check()

    def test_eviction_counter_drift(self):
        system = self._system()
        system.iommu.eviction_counters[0] += 3
        with pytest.raises(InvariantViolation, match="counter drift"):
            system.invariants.check()

    def test_cu_occupancy(self):
        system = self._system()
        system.gpus[0].cus[0].outstanding = -1
        with pytest.raises(InvariantViolation, match="outstanding"):
            system.invariants.check()

    def test_inclusion_bug_is_detected(self):
        """Force the mostly-inclusive baseline through the exclusivity
        audit: a genuine inclusion violation must exceed the bounded
        tolerance by a wide margin."""
        config = baseline_config()
        workload = build_single_app_workload("MM", config, scale=0.1)
        system = MultiGPUSystem(config, workload, "baseline", check_invariants=True)
        system.policy.least_inclusive = True
        with pytest.raises(InvariantViolation, match="exclusivity"):
            system.run()

    def test_completion_leak_detected(self):
        system = self._system()
        request = ATSRequest(gpu_id=0, pid=1, vpn=5, issue_time=0)
        system.iommu.pending.create(request)
        with pytest.raises(InvariantViolation, match="pending table holds"):
            system.invariants.check(final=True)

    def test_violation_carries_details(self):
        system = self._system()
        system.iommu.eviction_counters[0] += 3
        with pytest.raises(InvariantViolation) as excinfo:
            system.invariants.check()
        details = excinfo.value.details
        assert details["invariant"] == "eviction-counters"
        assert "cycle" in details
