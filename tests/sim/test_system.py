"""Unit tests for system wiring, measurement, and result assembly."""

import numpy as np
import pytest

from repro.config.presets import baseline_config
from repro.sim.driver import run_single_app
from repro.sim.system import MultiGPUSystem
from repro.workloads.multi_app import (
    build_multi_app_workload,
    build_single_app_workload,
)
from repro.workloads.trace import CUStream, Placement, Workload

SCALE = 0.05


def tiny_workload(vpns=(1, 2, 3), kind="multi"):
    placement = Placement(
        gpu_id=0, pid=1, app_name="t", cu_ids=[0],
        streams=[CUStream(
            np.array(vpns, dtype=np.int64),
            np.full(len(vpns), 100, dtype=np.int64),
            np.ones(len(vpns), dtype=np.int64),
        )],
    )
    return Workload(name="t", kind=kind, placements=[placement],
                    app_names={1: "t"}, footprints={1: np.array(sorted(set(vpns)))})


class TestConstruction:
    def test_placement_gpu_bounds_checked(self, tiny_config):
        workload = tiny_workload()
        workload.placements[0].gpu_id = 99
        with pytest.raises(ValueError, match="targets GPU"):
            MultiGPUSystem(tiny_config, workload, "baseline")

    def test_empty_workload_rejected(self, tiny_config):
        workload = tiny_workload()
        workload.placements = []
        with pytest.raises(ValueError, match="no placements"):
            MultiGPUSystem(tiny_config, workload, "baseline")

    def test_prefault_maps_footprints(self, tiny_config):
        workload = tiny_workload()
        system = MultiGPUSystem(tiny_config, workload, "baseline")
        assert system.page_tables.walk(1, 1).hit

    def test_prefault_disabled_faults_via_pri(self, tiny_config):
        workload = tiny_workload(vpns=(5,))
        system = MultiGPUSystem(tiny_config, workload, "baseline", prefault=False)
        result = system.run()
        assert result.apps[1].counters["page_faults"] == 1
        assert result.apps[1].counters["runs"] == 1  # still completed


class TestMeasurement:
    def test_every_run_completes(self, tiny_config):
        system = MultiGPUSystem(tiny_config, tiny_workload(), "baseline")
        result = system.run()
        assert result.apps[1].counters["runs"] == 3
        assert system.halted

    def test_multi_app_reruns_fast_finishers(self):
        config = baseline_config()
        workload = build_multi_app_workload("W2", config, scale=SCALE)
        system = MultiGPUSystem(config, workload, "baseline")
        result = system.run()
        rounds = [cu.execution_round for gpu in system.gpus for cu in gpu.cus]
        # At least one application finished early and re-executed.
        assert max(rounds) >= 1
        # Statistics still reflect only the first execution.
        for pid in workload.pids:
            assert result.apps[pid].counters["runs"] == workload.measured_runs_for(pid)

    def test_single_app_does_not_rerun(self):
        config = baseline_config()
        workload = build_single_app_workload("FIR", config, scale=SCALE)
        system = MultiGPUSystem(config, workload, "baseline")
        system.run()
        assert all(cu.execution_round == 0 for gpu in system.gpus for cu in gpu.cus)

    def test_exec_time_recorded_per_app(self):
        config = baseline_config()
        workload = build_multi_app_workload("W2", config, scale=SCALE)
        result = MultiGPUSystem(config, workload, "baseline").run()
        for pid in workload.pids:
            assert result.apps[pid].exec_cycles > 0
        assert result.exec_cycles == max(a.exec_cycles for a in result.apps.values())


class TestRecording:
    def test_iommu_stream_recorded_when_requested(self, tiny_config):
        workload = tiny_workload(vpns=tuple(range(50)))
        system = MultiGPUSystem(
            tiny_config, workload, "baseline", record_iommu_stream=True
        )
        result = system.run()
        assert result.iommu_stream
        assert all(pid == 1 for pid, _ in result.iommu_stream)

    def test_stream_not_recorded_by_default(self, tiny_config):
        system = MultiGPUSystem(tiny_config, tiny_workload(), "baseline")
        assert system.run().iommu_stream is None

    def test_snapshots_taken_at_interval(self):
        config = baseline_config()
        workload = build_single_app_workload("FIR", config, scale=SCALE)
        result = MultiGPUSystem(
            config, workload, "baseline", snapshot_interval=5000
        ).run()
        assert len(result.snapshots) >= 2
        cycles = [s.cycle for s in result.snapshots]
        assert cycles == sorted(cycles)
        for snap in result.snapshots:
            assert snap.l2_duplicated <= snap.l2_resident
            assert len(snap.iommu_owner_counts) == config.num_gpus


class TestResults:
    def test_result_metadata(self):
        result = run_single_app("FIR", policy="baseline", scale=SCALE)
        assert result.policy_name == "baseline"
        assert result.workload_kind == "single"
        assert result.metadata["num_gpus"] == 4
        assert result.events_executed > 0

    def test_derived_rates_in_range(self):
        result = run_single_app("MM", policy="baseline", scale=SCALE)
        app = result.apps[1]
        for rate in (app.l1_hit_rate, app.l2_hit_rate, app.iommu_hit_rate):
            assert 0.0 <= rate <= 1.0
        assert app.ipc > 0
        assert app.mpki >= 0

    def test_speedup_vs_self_is_one(self):
        result = run_single_app("FIR", policy="baseline", scale=SCALE)
        assert result.speedup_vs(result) == pytest.approx(1.0)
        per_app = result.per_app_speedup_vs(result)
        assert per_app[1] == pytest.approx(1.0)

    def test_tracker_stats_only_for_least_tlb(self):
        base = run_single_app("FIR", policy="baseline", scale=SCALE)
        least = run_single_app("FIR", policy="least-tlb", scale=SCALE)
        assert base.tracker_stats is None
        assert least.tracker_stats is not None
        assert least.tracker_stats["registrations"] > 0

    def test_apps_named(self):
        result = run_single_app("FIR", policy="baseline", scale=SCALE)
        assert [a.pid for a in result.apps_named("FIR")] == [1]
        assert result.apps_named("XX") == []


class TestDeterminism:
    def test_same_seed_same_result(self):
        a = run_single_app("MM", policy="least-tlb", scale=SCALE, seed=5)
        b = run_single_app("MM", policy="least-tlb", scale=SCALE, seed=5)
        assert a.total_cycles == b.total_cycles
        assert a.apps[1].counters == b.apps[1].counters

    def test_different_seed_different_result(self):
        a = run_single_app("MM", policy="baseline", scale=SCALE, seed=5)
        b = run_single_app("MM", policy="baseline", scale=SCALE, seed=6)
        assert a.apps[1].counters != b.apps[1].counters


class TestShootdown:
    def test_system_shootdown_clears_everything(self, tiny_config):
        workload = tiny_workload()
        system = MultiGPUSystem(tiny_config, workload, "least-tlb")
        system.run()
        assert len(system.gpus[0].l2_tlb) > 0
        system.shootdown()
        assert len(system.gpus[0].l2_tlb) == 0
        assert len(system.iommu.tlb) == 0
