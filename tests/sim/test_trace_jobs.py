"""Ingested traces as first-class simulation jobs (docs/traces.md).

Covers the sim/CLI/serve plumbing around :mod:`repro.workloads.ingest`:
content-addressed cache fingerprints, the ``run_trace`` driver, exact
cross-backend agreement, the ``trace_*`` bench family with cache hits,
the CLI exit-code contract, and serve-request parity.
"""

import json
import shutil

import pytest

from repro.cli import main
from repro.config.presets import baseline_config
from repro.sim.cache import ResultCache
from repro.sim.driver import run_trace
from repro.sim.parallel import (
    JobSpec,
    TRACE_FAMILY_POLICIES,
    dedupe_jobs,
    run_matrix,
    trace_bench_pairs,
    trace_family,
)
from repro.serve.requests import RequestError, parse_job, spec_request
from repro.workloads.ingest import synthesize_k6_trace

SCALE = 0.2


@pytest.fixture(scope="module")
def trace(tmp_path_factory):
    path = tmp_path_factory.mktemp("trace-jobs") / "k6_jobs.trc.gz"
    synthesize_k6_trace(path, accesses=15_000, footprint_pages=512, seed=4)
    return path


class TestFingerprints:
    def test_content_addressed_across_paths(self, trace, tmp_path):
        copy = tmp_path / "renamed.trc.gz"
        shutil.copyfile(trace, copy)
        a = JobSpec("trace", str(trace), "baseline", scale=SCALE).fingerprint()
        b = JobSpec("trace", str(copy), "baseline", scale=SCALE).fingerprint()
        assert a == b

    def test_changes_with_content(self, trace, tmp_path):
        edited = tmp_path / "edited.trc.gz"
        shutil.copyfile(trace, edited)
        with open(edited, "ab") as handle:
            handle.write(b"\x00")
        a = JobSpec("trace", str(trace), "baseline", scale=SCALE).fingerprint()
        b = JobSpec("trace", str(edited), "baseline", scale=SCALE).fingerprint()
        assert a != b

    def test_split_policy_is_part_of_identity(self, trace):
        pairs = {
            split: JobSpec("trace", str(trace), "baseline", scale=SCALE,
                           options=(("split", split),)).fingerprint()
            for split in ("round-robin", "address-hash")
        }
        assert pairs["round-robin"] != pairs["address-hash"]


class TestRunTrace:
    def test_metadata_records_provenance(self, trace):
        result = run_trace(str(trace), scale=SCALE)
        meta = result.metadata["trace"]
        assert len(meta["digest"]) == 64
        assert meta["split"] == "round-robin"
        assert meta["format"] == "k6"
        assert meta["records"] == 15_000
        assert result.apps[1].counters["accesses"] > 0

    def test_backends_agree_bit_identically(self, trace):
        config = baseline_config()
        reference = run_trace(str(trace), config, "baseline", scale=SCALE)
        for backend in ("functional", "vectorized"):
            other = run_trace(str(trace), config, "baseline", scale=SCALE,
                              backend=backend)
            assert other.total_cycles == reference.total_cycles, backend
            assert other.apps[1].counters == reference.apps[1].counters, backend


class TestBenchFamily:
    def test_family_covers_both_policies(self, trace):
        pairs = trace_bench_pairs(str(trace), scale=SCALE)
        assert [spec.policy for _bench, spec in pairs] == list(TRACE_FAMILY_POLICIES)
        assert {bench for bench, _spec in pairs} == {trace_family(str(trace))}
        assert all(dict(spec.options)["split"] == "round-robin"
                   for _bench, spec in pairs)

    def test_rerun_is_all_cache_hits(self, trace, tmp_path):
        pairs = trace_bench_pairs(str(trace), scale=SCALE, backend="functional")
        cache = ResultCache(tmp_path / "cache")
        cold = run_matrix(pairs, workers=1, cache=cache)
        assert all(not o.cached and o.result is not None for o in cold)
        warm = run_matrix(pairs, workers=1, cache=cache)
        assert all(o.cached for o in warm)
        assert {o.digest for o in cold} == {o.digest for o in warm}


class TestCliContract:
    def test_run_trace_path_and_json(self, trace, tmp_path, capsys):
        out = tmp_path / "result.json"
        rc = main(["run", "--trace", str(trace), "--scale", str(SCALE),
                   "--backend", "functional", "--json", str(out)])
        assert rc == 0
        data = json.loads(out.read_text())
        assert data["kind"] == "single"
        assert data["metadata"]["trace"]["format"] == "k6"

    def test_run_rejects_trace_plus_workload(self, trace, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "MM", "--trace", str(trace)])
        assert excinfo.value.code == 2
        assert "error:" in capsys.readouterr().err

    def test_run_rejects_missing_trace_path(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--trace", "/nonexistent/t.trc"])
        assert excinfo.value.code == 2
        assert "error:" in capsys.readouterr().err

    def test_ingest_malformed_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.trc"
        bad.write_text("0x10 P_MEM_RD 1\nbroken\n")
        with pytest.raises(SystemExit) as excinfo:
            main(["ingest", str(bad)])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "line 2" in err and "Traceback" not in err

    def test_bench_trace_missing_file_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["bench", "--trace", "/nonexistent/t.trc"])
        assert excinfo.value.code == 2
        assert "error:" in capsys.readouterr().err


class TestServeParity:
    def test_parse_job_matches_bench_pairs(self, trace):
        _bench, spec = trace_bench_pairs(str(trace), scale=SCALE)[0]
        served = parse_job({
            "kind": "trace", "workload": str(trace),
            "policy": spec.policy, "scale": SCALE,
        })
        assert served.fingerprint() == spec.fingerprint()
        assert dedupe_jobs([("x", served)])[0][2] == dedupe_jobs([("x", spec)])[0][2]

    def test_spec_request_round_trips(self, trace):
        for _bench, spec in trace_bench_pairs(str(trace), scale=SCALE):
            request = spec_request(spec)
            assert request is not None
            assert parse_job(request).fingerprint() == spec.fingerprint()

    def test_rejects_missing_trace_file(self):
        with pytest.raises(RequestError, match="trace"):
            parse_job({"kind": "trace", "workload": "/nonexistent/t.trc",
                       "policy": "baseline", "scale": SCALE})

    def test_rejects_split_on_non_trace_jobs(self):
        with pytest.raises(RequestError, match="split"):
            parse_job({"kind": "single", "workload": "MM",
                       "policy": "baseline", "scale": SCALE,
                       "options": {"split": "address-hash"}})
