"""Unit tests for the per-GPU local page-table path (Figure 23 variant)."""

import numpy as np
import pytest

from repro.sim.system import MultiGPUSystem
from repro.workloads.trace import CUStream, Placement, Workload


def workload(vpns, gap=5000):
    n = len(vpns)
    placement = Placement(
        gpu_id=0, pid=1, app_name="x", cu_ids=[0],
        streams=[CUStream(
            np.array(vpns, dtype=np.int64),
            np.full(n, gap, dtype=np.int64),
            np.ones(n, dtype=np.int64),
        )],
    )
    return Workload(name="x", kind="multi", placements=[placement],
                    app_names={1: "x"},
                    footprints={1: np.array(sorted(set(vpns)), dtype=np.int64)})


@pytest.fixture
def local_config(tiny_config):
    return tiny_config.derive(local_page_tables=True, local_walk_latency=60)


class TestLocalWalkPath:
    def test_first_touch_faults_to_iommu_then_fills_local_table(self, local_config):
        system = MultiGPUSystem(local_config, workload([5]), "baseline")
        result = system.run()
        c = result.apps[1].counters
        assert c["local_walks"] == 1
        assert c["local_faults"] == 1
        assert c["iommu_lookup"] == 1
        # The response installed the local mapping.
        gpu = system.gpus[0]
        assert gpu.local_tables.walk(1, 5).hit

    def test_second_touch_resolves_locally(self, local_config):
        # Distinct pages evict page 5 from the small L2, forcing a re-walk
        # that must now hit the local page table, not the IOMMU.
        fillers = list(range(100, 140))
        system = MultiGPUSystem(
            local_config, workload([5] + fillers + [5]), "baseline"
        )
        result = system.run()
        c = result.apps[1].counters
        assert c["local_walks"] == c["iommu_lookup"] + 1  # one local re-hit
        assert c["local_faults"] == c["iommu_lookup"]

    def test_local_mapping_matches_cpu_page_table(self, local_config):
        system = MultiGPUSystem(local_config, workload([7, 8, 9]), "baseline")
        system.run()
        gpu = system.gpus[0]
        for vpn in (7, 8, 9):
            local = gpu.local_tables.walk(1, vpn)
            shared = system.page_tables.walk(1, vpn)
            assert local.hit and shared.hit
            assert local.ppn == shared.ppn

    def test_local_walk_latency_applies(self, local_config):
        fast = MultiGPUSystem(local_config, workload([5]), "baseline")
        slow_config = local_config.derive(local_walk_latency=600)
        slow = MultiGPUSystem(slow_config, workload([5]), "baseline")
        fast_result = fast.run()
        slow_result = slow.run()
        # First touch faults either way; latency shows on the fault path's
        # local attempt before escalation.
        assert (
            slow_result.apps[1].mean_translation_latency
            > fast_result.apps[1].mean_translation_latency
        )

    def test_least_tlb_composes_with_local_tables(self, local_config):
        system = MultiGPUSystem(local_config, workload(list(range(40))), "least-tlb")
        result = system.run()
        assert result.apps[1].counters["runs"] == 40
        assert result.apps[1].counters["local_faults"] == 40
