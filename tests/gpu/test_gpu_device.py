"""Unit tests for the GPU device: issue, MSHR, fills, completion."""

import numpy as np
import pytest

from repro.sim.system import MultiGPUSystem
from repro.workloads.trace import CUStream, Placement, Workload


def stream(vpns, gap=50, repeats=1, warmup=0):
    n = len(vpns)
    return CUStream(
        vpns=np.array(vpns, dtype=np.int64),
        gaps=np.full(n, gap, dtype=np.int64),
        repeats=np.full(n, repeats, dtype=np.int64),
        warmup_runs=warmup,
    )


def one_gpu_workload(vpns, *, gpu_id=0, pid=1, gap=50, repeats=1, kind="multi"):
    placement = Placement(
        gpu_id=gpu_id,
        pid=pid,
        app_name="synthetic",
        cu_ids=[0],
        streams=[stream(vpns, gap=gap, repeats=repeats)],
    )
    return Workload(
        name="synthetic",
        kind=kind,
        placements=[placement],
        app_names={pid: "synthetic"},
        footprints={pid: np.array(sorted(set(vpns)), dtype=np.int64)},
    )


def build(tiny_config, workload, policy="baseline", **kwargs):
    return MultiGPUSystem(tiny_config, workload, policy, **kwargs)


class TestIssueAndCompletion:
    def test_all_runs_complete(self, tiny_config):
        workload = one_gpu_workload([1, 2, 3, 4, 5])
        system = build(tiny_config, workload)
        result = system.run()
        app = result.apps[1]
        assert app.counters["runs"] == 5
        assert app.exec_cycles > 0

    def test_repeats_count_as_l1_hits(self, tiny_config):
        # Gaps longer than the full translation path serialize the runs.
        workload = one_gpu_workload([1, 1, 1], repeats=4, gap=2000)
        system = build(tiny_config, workload)
        result = system.run()
        c = result.apps[1].counters
        assert c["accesses"] == 12
        # First run misses L1; the burst and the revisits hit.
        assert c["l1_miss"] == 1
        assert c["l1_hit"] == 11

    def test_overlapping_same_page_misses_merge_in_mshr(self, tiny_config):
        # With a short gap, run 2 issues before run 1's fill returns: it
        # misses L1 and L2 but merges into the outstanding MSHR.
        workload = one_gpu_workload([1, 1, 1], repeats=4, gap=50)
        system = build(tiny_config, workload)
        result = system.run()
        c = result.apps[1].counters
        assert c["l1_miss"] == 2
        assert c["l2_mshr_merge"] == 1
        assert c["iommu_lookup"] == 1

    def test_l1_hit_completes_without_l2(self, tiny_config):
        workload = one_gpu_workload([7, 7], gap=2000)
        system = build(tiny_config, workload)
        result = system.run()
        c = result.apps[1].counters
        assert c.get("l2_miss", 0) + c.get("l2_hit", 0) == 1  # run 2 stays in L1

    def test_distinct_pages_produce_walks(self, tiny_config):
        vpns = list(range(10))
        workload = one_gpu_workload(vpns)
        system = build(tiny_config, workload)
        result = system.run()
        c = result.apps[1].counters
        assert c["walks"] == 10
        assert c["served_walk"] == 10

    def test_window_limits_outstanding(self, tiny_config):
        # 2 slots per CU: with long translation latency, runs 3+ must wait.
        vpns = list(range(6))
        workload = one_gpu_workload(vpns, gap=1)
        system = build(tiny_config, workload)
        gpu = system.gpus[0]
        peak = 0
        original = gpu._l2_lookup

        def spy(cu, pid, vpn, measured, trace=None):
            nonlocal peak
            peak = max(peak, cu.outstanding)
            original(cu, pid, vpn, measured, trace)

        gpu._l2_lookup = spy
        system.run()
        assert peak <= tiny_config.gpu.slots_per_cu


class TestMSHR:
    def test_concurrent_same_page_requests_merge(self, tiny_config):
        # Two CUs touch the same page at the same time: one ATS request.
        placement = Placement(
            gpu_id=0,
            pid=1,
            app_name="synthetic",
            cu_ids=[0, 1],
            streams=[stream([42]), stream([42])],
        )
        workload = Workload(
            name="synthetic",
            kind="multi",
            placements=[placement],
            app_names={1: "synthetic"},
            footprints={1: np.array([42])},
        )
        system = build(tiny_config, workload)
        result = system.run()
        c = result.apps[1].counters
        assert c["l2_miss"] == 2
        assert c["l2_mshr_merge"] == 1
        assert c["iommu_lookup"] == 1
        assert c["runs"] == 2  # both runs still complete

    def test_mshr_cleared_after_fill(self, tiny_config):
        workload = one_gpu_workload([9, 9, 9], gap=2000)
        system = build(tiny_config, workload)
        system.run()
        assert not system.gpus[0].mshr


class TestFills:
    def test_fill_populates_l2_and_l1(self, tiny_config):
        workload = one_gpu_workload([5])
        system = build(tiny_config, workload)
        system.run()
        gpu = system.gpus[0]
        assert gpu.l2_tlb.contains(1, 5)
        assert gpu.l1_tlbs[0].contains(1, 5)

    def test_second_access_hits_locally(self, tiny_config):
        workload = one_gpu_workload([5] + list(range(100, 104)) + [5], gap=2000)
        system = build(tiny_config, workload)
        result = system.run()
        c = result.apps[1].counters
        # The revisit of page 5 must not reach the IOMMU again.
        assert c["iommu_lookup"] == 5

    def test_invalidate_removes_everywhere(self, tiny_config):
        workload = one_gpu_workload([5])
        system = build(tiny_config, workload)
        system.run()
        gpu = system.gpus[0]
        assert gpu.invalidate(1, 5) is True
        assert not gpu.l2_tlb.contains(1, 5)
        assert not gpu.l1_tlbs[0].contains(1, 5)
        assert gpu.invalidate(1, 5) is False


class TestProbe:
    def test_probe_hit_keep(self, tiny_config):
        workload = one_gpu_workload([5])
        system = build(tiny_config, workload)
        system.run()
        gpu = system.gpus[0]
        entry = gpu.probe_l2(1, 5, remove_on_hit=False)
        assert entry is not None
        assert gpu.l2_tlb.contains(1, 5)

    def test_probe_hit_remove(self, tiny_config):
        workload = one_gpu_workload([5])
        system = build(tiny_config, workload)
        system.run()
        gpu = system.gpus[0]
        entry = gpu.probe_l2(1, 5, remove_on_hit=True)
        assert entry is not None
        assert not gpu.l2_tlb.contains(1, 5)

    def test_probe_does_not_pollute_stats(self, tiny_config):
        workload = one_gpu_workload([5])
        system = build(tiny_config, workload)
        system.run()
        gpu = system.gpus[0]
        before = gpu.l2_tlb.stats.lookups
        gpu.probe_l2(1, 6, remove_on_hit=False)
        assert gpu.l2_tlb.stats.lookups == before


class TestWarmup:
    def test_warmup_runs_excluded_from_stats(self, tiny_config):
        placement = Placement(
            gpu_id=0, pid=1, app_name="synthetic", cu_ids=[0],
            streams=[stream([1, 2, 3, 4], warmup=2)],
        )
        workload = Workload(
            name="synthetic", kind="multi", placements=[placement],
            app_names={1: "synthetic"}, footprints={1: np.arange(5)},
        )
        system = build(tiny_config, workload)
        result = system.run()
        c = result.apps[1].counters
        assert c["runs"] == 2
        assert result.apps[1].runs == 2

    def test_exec_time_excludes_warmup(self, tiny_config):
        placement = Placement(
            gpu_id=0, pid=1, app_name="synthetic", cu_ids=[0],
            streams=[stream([1, 2, 3, 4], warmup=2)],
        )
        workload = Workload(
            name="synthetic", kind="multi", placements=[placement],
            app_names={1: "synthetic"}, footprints={1: np.arange(5)},
        )
        system = build(tiny_config, workload)
        result = system.run()
        assert result.apps[1].exec_cycles < result.total_cycles


class TestDuplicateCU:
    def test_duplicate_cu_assignment_rejected(self, tiny_config):
        placement_a = Placement(
            gpu_id=0, pid=1, app_name="a", cu_ids=[0], streams=[stream([1])]
        )
        placement_b = Placement(
            gpu_id=0, pid=2, app_name="b", cu_ids=[0], streams=[stream([2])]
        )
        workload = Workload(
            name="bad", kind="multi",
            placements=[placement_a, placement_b],
            app_names={1: "a", 2: "b"},
            footprints={1: np.array([1]), 2: np.array([2])},
        )
        with pytest.raises(ValueError, match="assigned twice"):
            build(tiny_config, workload)
