"""Unit tests for fault-plan parsing and the deterministic injector."""

import pytest

from repro.faults import (
    ALL_SITES,
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    HardeningConfig,
    build_injector,
)


class TestFaultPlanParsing:
    def test_empty_text_is_empty_plan(self):
        for text in (None, "", "   "):
            plan = FaultPlan.parse(text)
            assert plan.is_empty()
            assert len(plan) == 0

    def test_parse_rate_site(self):
        plan = FaultPlan.parse("drop-remote:0.25")
        (spec,) = plan
        assert spec.site == "drop-remote"
        assert spec.rate == 0.25

    def test_parse_rate_param_site(self):
        plan = FaultPlan.parse("stall-walker:0.1:2000")
        (spec,) = plan
        assert spec.rate == 0.1
        assert spec.param == 2000

    def test_parse_kill_site(self):
        plan = FaultPlan.parse("kill-walker:3@100000")
        (spec,) = plan
        assert spec.param == 3
        assert spec.at_cycle == 100000

    def test_parse_combined(self):
        plan = FaultPlan.parse("drop-remote:0.01,flip-tlb:0.0001,kill-walker:0@5000")
        assert len(plan) == 3
        assert not plan.is_empty()

    def test_describe_round_trips(self):
        text = "drop-remote:0.01,delay-remote:0.05:400,kill-walker:2@9000"
        plan = FaultPlan.parse(text)
        assert FaultPlan.parse(plan.describe()).describe() == plan.describe()

    @pytest.mark.parametrize("bad", [
        "melt-cpu:1.0",          # unknown site
        "drop-remote",           # missing rate
        "drop-remote:nan2",      # non-numeric rate
        "drop-remote:1.5",       # rate out of range
        "drop-remote:-0.1",      # negative rate
        "stall-walker:0.1",      # missing param
        "kill-walker:3",         # missing @cycle
        "kill-walker:x@100",     # non-integer index
    ])
    def test_parse_rejects(self, bad):
        with pytest.raises(FaultPlanError):
            FaultPlan.parse(bad)

    def test_duplicate_site_rejected(self):
        with pytest.raises(FaultPlanError, match="duplicate"):
            FaultPlan.parse("drop-remote:0.1,drop-remote:0.2")

    def test_multiple_kills_allowed(self):
        plan = FaultPlan.parse("kill-walker:0@100,kill-walker:1@200")
        assert len(plan) == 2


class TestHardeningConfig:
    def test_backoff_doubles(self):
        h = HardeningConfig(retry_backoff_base=500)
        assert [h.backoff(a) for a in (1, 2, 3, 4)] == [500, 1000, 2000, 4000]

    def test_validation(self):
        with pytest.raises(ValueError):
            HardeningConfig(walk_timeout=0)
        with pytest.raises(ValueError):
            HardeningConfig(max_walk_retries=-1)
        with pytest.raises(ValueError):
            HardeningConfig(retry_backoff_base=0)


class TestFaultInjector:
    def test_build_injector_none_for_empty(self):
        assert build_injector(None, seed=1) is None
        assert build_injector("", seed=1) is None
        assert build_injector(FaultPlan(), seed=1) is None
        assert build_injector("drop-remote:0.0", seed=1) is None

    def test_build_injector_from_spec_and_string(self):
        assert build_injector("drop-remote:0.5", seed=1) is not None
        assert build_injector(FaultSpec("drop-remote", rate=0.5), seed=1) is not None

    def test_deterministic_per_seed(self):
        plan = FaultPlan.parse("drop-remote:0.3")
        a = FaultInjector(plan, seed=42)
        b = FaultInjector(plan, seed=42)
        draws_a = [a.drop_remote_probe() for _ in range(500)]
        draws_b = [b.drop_remote_probe() for _ in range(500)]
        assert draws_a == draws_b
        assert any(draws_a) and not all(draws_a)

    def test_sites_use_independent_streams(self):
        """Adding a second site must not perturb the first site's draws."""
        alone = FaultInjector(FaultPlan.parse("drop-remote:0.3"), seed=7)
        combined = FaultInjector(
            FaultPlan.parse("drop-remote:0.3,flip-tlb:0.5"), seed=7
        )
        draws = []
        for _ in range(300):
            draws.append(combined.drop_remote_probe())
            combined.tlb_parity()  # interleave the other site's draws
        assert draws == [alone.drop_remote_probe() for _ in range(300)]

    def test_rate_one_always_fires(self):
        injector = FaultInjector(FaultPlan.parse("drop-walk:1.0"), seed=1)
        assert all(injector.drop_walk_result() for _ in range(50))
        assert injector.stats["drop-walk_injected"] == 50
        assert injector.injected_total() == 50

    def test_param_sites_return_magnitude(self):
        injector = FaultInjector(FaultPlan.parse("stall-walker:1.0:2000"), seed=1)
        assert injector.walker_stall() == 2000
        quiet = FaultInjector(FaultPlan.parse("drop-remote:1.0"), seed=1)
        assert quiet.walker_stall() == 0

    def test_walker_kills_collected(self):
        injector = FaultInjector(
            FaultPlan.parse("kill-walker:0@100,kill-walker:5@900"), seed=1
        )
        assert injector.walker_kills == [(0, 100), (5, 900)]

    def test_all_sites_parseable(self):
        for site in ALL_SITES:
            if site == "kill-walker":
                text = f"{site}:0@1"
            elif site in ("delay-remote", "stall-walker"):
                text = f"{site}:0.5:100"
            elif site == "slow-worker":
                text = f"{site}:2:100"
            elif site in ("kill-worker", "fail-job", "corrupt-cache"):
                text = f"{site}:2"
            else:
                text = f"{site}:0.5"
            assert not FaultPlan.parse(text).is_empty()
