"""End-to-end fault campaigns against real workloads.

Each test injects one class of fault and asserts the hardened protocol's
contract: the run either completes with every waiter served (recovery)
or fails fast with a diagnosable ``SimulationStalledError`` (detection)
— never a silent hang or a truncated result.
"""

import pytest

from repro.config.presets import baseline_config
from repro.engine.watchdog import SimulationStalledError
from repro.faults import HardeningConfig
from repro.sim.system import MultiGPUSystem
from repro.workloads.multi_app import build_single_app_workload

SCALE = 0.05

FAST_HARDENING = HardeningConfig(
    walk_timeout=3_000,
    probe_timeout=1_000,
    retry_backoff_base=100,
    pri_retry_margin=2_000,
)
"""Short timeouts so recovery-heavy campaigns stay fast in tests."""


def run_campaign(faults, policy="least-tlb", *, hardening=FAST_HARDENING, **kwargs):
    config = baseline_config()
    workload = build_single_app_workload("MM", config, scale=SCALE)
    system = MultiGPUSystem(
        config, workload, policy,
        faults=faults, hardening=hardening, check_invariants=True, **kwargs,
    )
    return system, system.run()


def assert_completed(system, result):
    """Every application finished and nothing leaked in flight."""
    assert not system._pids_pending
    assert len(system.iommu.pending) == 0
    for gpu in system.gpus:
        assert not gpu.mshr
        assert all(cu.outstanding == 0 for cu in gpu.cus)
    for app in result.apps.values():
        assert app.exec_cycles > 0


class TestRemoteProbeFaults:
    def test_drop_all_probes_completes_via_walks(self):
        system, result = run_campaign("drop-remote:1.0")
        assert_completed(system, result)
        assert system.iommu.stats["probes_dropped"] > 0
        assert system.iommu.stats["remote_hits"] == 0
        assert system.iommu.stats["probe_timeouts"] > 0
        assert system.topology.total_drops() > 0
        assert result.metadata["faults"] == "drop-remote:1"
        assert result.metadata["fault_injections"]["drop-remote_injected"] > 0

    def test_drop_all_probes_serial_variant(self):
        """remote-then-walk (race_ptw=False) has no racing walk to hide
        the loss: only the probe timeout's walk fallback completes it."""
        system, result = run_campaign(
            "drop-remote:1.0", policy_options={"race_ptw": False}
        )
        assert_completed(system, result)
        assert system.iommu.stats["probe_timeouts"] > 0

    def test_delayed_probes_still_complete(self):
        system, result = run_campaign("delay-remote:0.5:2000")
        assert_completed(system, result)
        assert system.faults.stats["delay-remote_injected"] > 0


class TestWalkerFaults:
    def test_kill_walker_mid_run_redistributes(self):
        system, result = run_campaign("kill-walker:0@20000")
        assert_completed(system, result)
        walkers = system.iommu.walkers
        assert walkers.stats["walkers_killed"] == 1
        assert walkers.lost_capacity == system.config.iommu.walker_threads
        assert walkers.capacity == (
            (system.config.iommu.num_walkers - 1)
            * system.config.iommu.walker_threads
        )

    def test_kill_all_walkers_survives_via_pri(self):
        """With the whole walker pool dead, retry exhaustion must route
        every key through the (walker-free) PRI fault path."""
        config = baseline_config()
        kills = ",".join(
            f"kill-walker:{i}@1000" for i in range(config.iommu.num_walkers)
        )
        system, result = run_campaign(
            kills,
            hardening=HardeningConfig(
                walk_timeout=1_000, probe_timeout=500,
                max_walk_retries=1, retry_backoff_base=50,
            ),
        )
        assert_completed(system, result)
        assert system.iommu.walkers.capacity == 0
        assert system.iommu.stats["walk_retries_exhausted"] > 0

    def test_kill_all_walkers_and_pri_stalls_with_diagnostics(self):
        """Walker pool dead *and* PRI batches lost: no recovery path
        remains, so detection with diagnostics is the contract."""
        config = baseline_config()
        kills = ",".join(
            f"kill-walker:{i}@1000" for i in range(config.iommu.num_walkers)
        )
        with pytest.raises(SimulationStalledError) as excinfo:
            run_campaign(f"{kills},drop-pri:1.0")
        diag = excinfo.value.diagnostics
        assert diag, "stall error must carry diagnostics"
        assert diag["walkers"]["lost_capacity"] > 0
        assert diag["pids_pending"]

    def test_dropped_walk_results_recover_via_retry_or_pri(self):
        system, result = run_campaign("drop-walk:0.3")
        assert_completed(system, result)
        assert system.iommu.walkers.stats["walks_lost"] > 0
        assert system.iommu.stats["walk_timeouts"] > 0
        assert system.iommu.stats["walk_retries"] > 0

    def test_all_walks_lost_falls_back_to_pri(self):
        """Retry exhaustion must route every key through the PRI fault
        path rather than hanging."""
        system, result = run_campaign(
            "drop-walk:1.0",
            hardening=HardeningConfig(
                walk_timeout=1_000, probe_timeout=500,
                max_walk_retries=1, retry_backoff_base=50,
            ),
        )
        assert_completed(system, result)
        assert system.iommu.stats["walk_retries_exhausted"] > 0
        assert system.iommu.stats["page_faults"] > 0

    def test_stalled_walks_complete_late(self):
        system, result = run_campaign("stall-walker:0.2:1500")
        assert_completed(system, result)
        assert system.faults.stats["stall-walker_injected"] > 0


class TestResponseFaults:
    def test_duplicate_responses_served_exactly_once(self):
        system, result = run_campaign("dup-response:0.2")
        assert_completed(system, result)
        assert system.iommu.stats["responses_duplicated"] > 0
        # Exactly-once service: each measured run retires exactly once,
        # so run counts match the workload despite duplicate deliveries.
        for app in result.apps.values():
            assert app.counters["runs"] == app.runs

    def test_drop_all_responses_is_detected_not_hung(self):
        with pytest.raises(SimulationStalledError) as excinfo:
            run_campaign("drop-response:1.0")
        diag = excinfo.value.diagnostics
        assert diag["pids_pending"]
        assert "cycle" in str(excinfo.value)

    def test_sever_every_path_is_detected_not_hung(self):
        """Probes, walks, responses, and PRI batches all dead: detection
        with diagnostics is the only acceptable outcome."""
        with pytest.raises(SimulationStalledError) as excinfo:
            run_campaign(
                "drop-remote:1.0,drop-walk:1.0,drop-response:1.0,drop-pri:1.0"
            )
        diag = excinfo.value.diagnostics
        assert diag["reason"]
        assert diag["fault_injections"]


class TestPriAndTlbFaults:
    def test_dropped_pri_batches_are_redriven(self):
        system, result = run_campaign(
            "drop-walk:1.0,drop-pri:0.5",
            hardening=HardeningConfig(
                walk_timeout=1_000, probe_timeout=500,
                max_walk_retries=0, retry_backoff_base=50,
                pri_retry_margin=1_000, max_pri_retries=8,
            ),
        )
        assert_completed(system, result)
        pri = system.iommu.pri.stats
        assert pri["batches_dropped"] > 0
        assert pri["batch_retries"] > 0

    def test_tlb_parity_errors_degrade_to_misses(self):
        system, result = run_campaign("flip-tlb:0.01")
        assert_completed(system, result)
        parity = (
            system.iommu.stats["tlb_parity_errors"]
            + system.faults.stats["flip-tlb_injected"]
        )
        assert parity > 0

    def test_tracker_false_positive_downgrade(self):
        """Past the false-positive threshold the policy must fall back to
        walk-only mode, once."""
        system, result = run_campaign(
            "flip-tlb:0.05",
            hardening=HardeningConfig(
                walk_timeout=3_000, probe_timeout=1_000,
                retry_backoff_base=100, tracker_fp_limit=3,
            ),
        )
        assert_completed(system, result)
        assert system.iommu.stats["tracker_downgrades"] == 1
        assert system.policy.remote_probes is False
        assert system.iommu.stats["tracker_false_positives"] >= 3


class TestCampaignDeterminism:
    def test_same_plan_same_seed_is_bit_identical(self):
        _, a = run_campaign("drop-remote:0.1,flip-tlb:0.001")
        _, b = run_campaign("drop-remote:0.1,flip-tlb:0.001")
        assert a.events_executed == b.events_executed
        assert a.total_cycles == b.total_cycles
        assert a.iommu_counters == b.iommu_counters
        assert a.metadata["fault_injections"] == b.metadata["fault_injections"]
