"""Unit tests for the page-walker pool and its schedulers."""

from repro.config.system import IOMMUConfig
from repro.engine.event_queue import EventQueue
from repro.iommu.page_walker import WalkerPool
from repro.structures.page_table import PageTableManager


def make_pool(
    num_walkers=2, threads=1, latency=100, scheduler="fifo", num_gpus=4, mapped=64
):
    queue = EventQueue()
    tables = PageTableManager()
    tables.prefault(1, range(mapped))
    config = IOMMUConfig(
        num_walkers=num_walkers,
        walker_threads=threads,
        walk_latency=latency,
        walker_scheduler=scheduler,
    )
    return queue, tables, WalkerPool(queue, tables, config, num_gpus)


class TestFIFO:
    def test_walk_completes_with_latency(self):
        queue, _, pool = make_pool()
        done = []
        pool.request(1, 0, 0, lambda r: done.append((queue.now, r)))
        queue.run()
        time, result = done[0]
        assert time == 100
        assert result.hit

    def test_fault_result(self):
        queue, _, pool = make_pool()
        done = []
        pool.request(1, 999_999, 0, lambda r: done.append(r))
        queue.run()
        assert done[0].faulted
        assert pool.stats["walks_faulted"] == 1

    def test_capacity_limits_concurrency(self):
        # 2 walkers x 1 thread: 6 walks finish in 3 serialized waves.
        queue, _, pool = make_pool(num_walkers=2, threads=1, latency=100)
        times = []
        for vpn in range(6):
            pool.request(1, vpn, 0, lambda r: times.append(queue.now))
        queue.run()
        assert times == [100, 100, 200, 200, 300, 300]

    def test_threads_multiply_capacity(self):
        queue, _, pool = make_pool(num_walkers=2, threads=3, latency=100)
        times = []
        for vpn in range(6):
            pool.request(1, vpn, 0, lambda r: times.append(queue.now))
        queue.run()
        assert times == [100] * 6

    def test_queue_wait_recorded(self):
        queue, _, pool = make_pool(num_walkers=1, threads=1, latency=100)
        for vpn in range(3):
            pool.request(1, vpn, 0, lambda r: None)
        queue.run()
        assert pool.queue_wait.count == 3
        assert pool.queue_wait.max == 200

    def test_partial_walk_is_cheaper(self):
        queue, tables, pool = make_pool()
        done = []
        # Unknown PID: faults at the first radix level -> 1/4 latency.
        pool.request(77, 0, 0, lambda r: done.append(queue.now))
        queue.run()
        assert done[0] == 25


class TestCancellation:
    def test_cancel_queued_walk(self):
        queue, _, pool = make_pool(num_walkers=1, threads=1)
        done = []
        pool.request(1, 0, 0, lambda r: done.append(0))
        ticket = pool.request(1, 1, 0, lambda r: done.append(1))
        assert pool.cancel(ticket) is True
        queue.run()
        assert done == [0]
        assert pool.stats["walks_cancelled"] == 1
        assert pool.stats["walks_dispatched"] == 1

    def test_cannot_cancel_running_walk(self):
        queue, _, pool = make_pool()
        ticket = pool.request(1, 0, 0, lambda r: None)
        assert pool.cancel(ticket) is False
        queue.run()

    def test_cancelled_walk_frees_slot_for_later_request(self):
        queue, _, pool = make_pool(num_walkers=1, threads=1, latency=100)
        done = []
        pool.request(1, 0, 0, lambda r: done.append(queue.now))
        cancelled = pool.request(1, 1, 0, lambda r: done.append(queue.now))
        pool.request(1, 2, 0, lambda r: done.append(queue.now))
        pool.cancel(cancelled)
        queue.run()
        # The third walk starts right after the first, skipping the
        # cancelled one.
        assert done == [100, 200]


class TestDWS:
    def test_per_gpu_fairness_under_flood(self):
        # GPU 0 floods; GPU 1 sends one walk.  Under DWS the single walk
        # must not wait behind the whole flood.
        queue, _, pool = make_pool(
            num_walkers=2, threads=1, latency=100, scheduler="dws", num_gpus=2
        )
        finish = {}
        for vpn in range(10):
            pool.request(1, vpn, 0, lambda r, v=vpn: finish.setdefault(("flood", v), queue.now))
        pool.request(1, 40, 1, lambda r: finish.setdefault("single", queue.now))
        queue.run()
        flood_last = max(t for k, t in finish.items() if k != "single")
        assert finish["single"] < flood_last

    def test_fifo_flood_starves_late_arrival(self):
        queue, _, pool = make_pool(
            num_walkers=2, threads=1, latency=100, scheduler="fifo", num_gpus=2
        )
        finish = {}
        for vpn in range(10):
            pool.request(1, vpn, 0, lambda r, v=vpn: finish.setdefault(("flood", v), queue.now))
        pool.request(1, 40, 1, lambda r: finish.setdefault("single", queue.now))
        queue.run()
        flood_last = max(t for k, t in finish.items() if k != "single")
        assert finish["single"] >= flood_last  # served after the flood

    def test_stealing_uses_idle_capacity(self):
        queue, _, pool = make_pool(
            num_walkers=4, threads=1, latency=100, scheduler="dws", num_gpus=4
        )
        done = []
        # Only GPU 0 is active: it may steal all four walkers.
        for vpn in range(4):
            pool.request(1, vpn, 0, lambda r: done.append(queue.now))
        queue.run()
        assert done == [100] * 4

    def test_dws_cancellation(self):
        queue, _, pool = make_pool(
            num_walkers=1, threads=1, latency=100, scheduler="dws", num_gpus=2
        )
        done = []
        pool.request(1, 0, 0, lambda r: done.append("a"))
        ticket = pool.request(1, 1, 0, lambda r: done.append("b"))
        pool.request(1, 2, 1, lambda r: done.append("c"))
        assert pool.cancel(ticket)
        queue.run()
        assert done == ["a", "c"]
