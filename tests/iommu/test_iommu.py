"""Unit tests for the IOMMU device: counters, spill-receiver selection,
shootdown bookkeeping."""

import numpy as np
import pytest

from repro.sim.system import MultiGPUSystem
from repro.structures.tlb import TLBEntry
from repro.workloads.trace import CUStream, Placement, Workload


@pytest.fixture
def system(tiny_config):
    placement = Placement(
        gpu_id=0, pid=1, app_name="x", cu_ids=[0],
        streams=[CUStream(np.array([1]), np.array([10]), np.array([1]))],
    )
    workload = Workload(
        name="x", kind="multi", placements=[placement],
        app_names={1: "x"}, footprints={1: np.array([1])},
    )
    return MultiGPUSystem(tiny_config, workload, "least-tlb")


def entry(vpn, owner, pid=1, budget=1):
    return TLBEntry(pid=pid, vpn=vpn, ppn=vpn + 1, spill_budget=budget, owner_gpu=owner)


class TestEvictionCounters:
    def test_insert_increments_owner(self, system):
        iommu = system.iommu
        iommu.insert_tlb(entry(1, owner=2))
        assert iommu.eviction_counters == [0, 0, 1, 0]

    def test_remove_decrements_owner(self, system):
        iommu = system.iommu
        iommu.insert_tlb(entry(1, owner=2))
        iommu.remove_tlb((1, 1))
        assert iommu.eviction_counters == [0, 0, 0, 0]

    def test_reinsert_same_key_transfers_ownership(self, system):
        iommu = system.iommu
        iommu.insert_tlb(entry(1, owner=2))
        iommu.insert_tlb(entry(1, owner=3))
        assert iommu.eviction_counters == [0, 0, 0, 1]

    def test_conflict_eviction_decrements_victim_owner(self, system):
        iommu = system.iommu
        ways = iommu.tlb.associativity
        sets = iommu.tlb.num_sets
        # Fill one set completely with GPU 0 entries, then overflow it.
        for i in range(ways):
            iommu.insert_tlb(entry(i * sets, owner=0))
        victim = iommu.insert_tlb(entry(ways * sets, owner=1))
        assert victim is not None
        assert iommu.eviction_counters[0] == ways - 1
        assert iommu.eviction_counters[1] == 1

    def test_unowned_entries_not_counted(self, system):
        iommu = system.iommu
        iommu.insert_tlb(entry(1, owner=-1))
        assert iommu.eviction_counters == [0, 0, 0, 0]


class TestSpillReceiverSelection:
    def test_min_counter_wins(self, system):
        iommu = system.iommu
        iommu.eviction_counters = [5, 2, 7, 9]
        assert iommu.select_spill_receiver() == 1

    def test_tie_break_rotates(self, system):
        iommu = system.iommu
        iommu.eviction_counters = [1, 1, 1, 1]
        picks = [iommu.select_spill_receiver() for _ in range(6)]
        # Rotating priority: each selection starts scanning after the last
        # winner, so ties spread round-robin instead of dumping on GPU 0.
        assert picks == [0, 1, 2, 3, 0, 1]

    def test_rotation_respects_counter_changes(self, system):
        iommu = system.iommu
        iommu.eviction_counters = [3, 1, 3, 1]
        assert iommu.select_spill_receiver() == 1
        assert iommu.select_spill_receiver() == 3
        assert iommu.select_spill_receiver() == 1


class TestShootdown:
    def test_full_shootdown_clears_tlb_counters_and_tracker(self, system):
        iommu = system.iommu
        iommu.insert_tlb(entry(1, owner=0))
        system.policy.tracker.register(0, 1, 1)
        dropped = iommu.shootdown()
        assert dropped == 1
        assert iommu.eviction_counters == [0, 0, 0, 0]
        assert len(iommu.tlb) == 0
        assert system.policy.tracker.query(1, 1) == []

    def test_pid_shootdown_rebuilds_counters(self, system):
        iommu = system.iommu
        iommu.insert_tlb(entry(1, owner=0, pid=1))
        iommu.insert_tlb(entry(2, owner=2, pid=9))
        iommu.shootdown(pid=1)
        assert len(iommu.tlb) == 1
        assert iommu.eviction_counters == [0, 0, 1, 0]

    def test_gpu_shootdown_clears_tracker_partition(self, system):
        tracker = system.policy.tracker
        tracker.register(0, 1, 1)
        tracker.register(1, 1, 2)
        system.gpus[0].shootdown()
        assert tracker.query(1, 1) == []
        assert tracker.query(1, 2) == [1]
