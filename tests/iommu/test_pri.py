"""Unit tests for the PRI fault-batching queue."""

from repro.config.system import IOMMUConfig
from repro.engine.event_queue import EventQueue
from repro.iommu.pri import PRIQueue
from repro.structures.page_table import PageTableManager


def make_pri(batch_size=4, timeout=1000, latency=500):
    queue = EventQueue()
    tables = PageTableManager()
    config = IOMMUConfig(
        pri_batch_size=batch_size,
        pri_timeout=timeout,
        fault_handling_latency=latency,
    )
    return queue, tables, PRIQueue(queue, tables, config)


def test_full_batch_dispatches_immediately():
    queue, tables, pri = make_pri(batch_size=2, latency=500)
    served = []
    pri.report(1, 10, lambda ppn: served.append((queue.now, ppn)))
    pri.report(1, 11, lambda ppn: served.append((queue.now, ppn)))
    queue.run()
    assert [t for t, _ in served] == [500, 500]
    assert tables.walk(1, 10).hit
    assert tables.walk(1, 11).hit


def test_timeout_dispatches_partial_batch():
    queue, _, pri = make_pri(batch_size=8, timeout=1000, latency=500)
    served = []
    pri.report(1, 10, lambda ppn: served.append(queue.now))
    queue.run()
    assert served == [1500]  # timeout at 1000 + handling 500
    assert pri.stats["timeout_batches"] == 1


def test_batches_counted():
    queue, _, pri = make_pri(batch_size=2)
    for vpn in range(6):
        pri.report(1, vpn, lambda ppn: None)
    queue.run()
    assert pri.stats["batches"] == 3
    assert pri.stats["faults_serviced"] == 6


def test_stale_timer_ignored_after_batch_dispatch():
    queue, _, pri = make_pri(batch_size=2, timeout=1000, latency=100)
    served = []
    pri.report(1, 1, lambda ppn: served.append(queue.now))
    pri.report(1, 2, lambda ppn: served.append(queue.now))  # dispatches batch
    pri.report(1, 3, lambda ppn: served.append(queue.now))  # new batch, own timer
    queue.run()
    assert served[:2] == [100, 100]
    assert len(served) == 3
    # The third fault dispatched by its own timer, not the first batch's.
    assert served[2] >= 1000


def test_callbacks_receive_mapped_ppn():
    queue, tables, pri = make_pri(batch_size=1)
    ppns = []
    pri.report(3, 77, ppns.append)
    queue.run()
    assert ppns[0] == tables.walk(3, 77).ppn


def test_service_time_accumulates():
    queue, _, pri = make_pri(batch_size=1, latency=250)
    pri.report(1, 5, lambda ppn: None)
    queue.run()
    assert pri.service_time.count == 1
    assert pri.service_time.mean == 250
