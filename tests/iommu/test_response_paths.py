"""Unit tests for IOMMU response routing and fault handling in context."""

import numpy as np

from repro.sim.system import MultiGPUSystem
from repro.workloads.trace import CUStream, Placement, Workload


def workload(gpu_vpns, footprints=None, kind="multi"):
    placements = []
    pages = set()
    for gpu_id, vpns in gpu_vpns.items():
        n = len(vpns)
        placements.append(
            Placement(
                gpu_id=gpu_id, pid=1, app_name="x", cu_ids=[0],
                streams=[CUStream(
                    np.array(vpns, dtype=np.int64),
                    np.full(n, 5000, dtype=np.int64),
                    np.ones(n, dtype=np.int64),
                )],
            )
        )
        pages.update(vpns)
    footprint = np.array(sorted(footprints if footprints is not None else pages))
    return Workload(name="x", kind=kind, placements=placements,
                    app_names={1: "x"}, footprints={1: footprint})


class TestFaultPath:
    def test_unmapped_page_served_via_pri(self, tiny_config):
        # Footprint excludes page 99: the walk faults, PRI maps it, and
        # the request still completes.
        system = MultiGPUSystem(
            tiny_config, workload({0: [99]}, footprints=[1]), "baseline"
        )
        result = system.run()
        c = result.apps[1].counters
        assert c["page_faults"] == 1
        assert c["runs"] == 1
        assert system.page_tables.walk(1, 99).hit
        assert system.iommu.pri.stats["faults_serviced"] == 1

    def test_fault_latency_dwarfs_walk_latency(self, tiny_config):
        mapped = MultiGPUSystem(tiny_config, workload({0: [5]}), "baseline")
        faulting = MultiGPUSystem(
            tiny_config, workload({0: [99]}, footprints=[1]), "baseline"
        )
        fast = mapped.run().apps[1].mean_translation_latency
        slow = faulting.run().apps[1].mean_translation_latency
        assert slow > fast + tiny_config.iommu.pri_timeout

    def test_fault_under_least_tlb(self, tiny_config):
        system = MultiGPUSystem(
            tiny_config, workload({0: [99]}, footprints=[1]), "least-tlb"
        )
        result = system.run()
        assert result.apps[1].counters["runs"] == 1
        # Least-inclusive: the faulted-then-walked page fills only the L2.
        assert system.gpus[0].l2_tlb.contains(1, 99)
        assert not system.iommu.tlb.contains(1, 99)


class TestResponseRouting:
    def test_waiters_on_different_gpus_each_get_a_response(self, tiny_config):
        system = MultiGPUSystem(
            tiny_config, workload({0: [5], 1: [5], 2: [5], 3: [5]}, kind="single"),
            "baseline",
        )
        result = system.run()
        assert result.apps[1].counters["runs"] == 4
        for gpu in system.gpus:
            assert gpu.l2_tlb.contains(1, 5)
        # All four merged into a single walk.
        assert system.iommu.walkers.stats["walks_dispatched"] == 1

    def test_latency_accumulator_counts_each_serviced_request(self, tiny_config):
        system = MultiGPUSystem(
            tiny_config, workload({0: [5], 1: [5]}, kind="single"), "baseline"
        )
        system.run()
        assert system.latency_for(1).count == 2

    def test_responses_tagged_by_source(self, tiny_config):
        vpns = list(range(40)) + [0]  # final revisit of an IOMMU-resident page
        system = MultiGPUSystem(tiny_config, workload({0: vpns}), "baseline")
        result = system.run()
        c = result.apps[1].counters
        assert c["served_walk"] >= 40
        # The revisit of page 0 (evicted from the small L2, still in the
        # IOMMU TLB under mostly-inclusive) is served by the IOMMU TLB.
        assert c.get("served_iommu", 0) >= 1
