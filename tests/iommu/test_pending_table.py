"""Unit tests for the pending-request table."""

import pytest

from repro.gpu.ats import ATSRequest
from repro.iommu.pending_table import PendingTable


def req(gpu=0, pid=1, vpn=5):
    return ATSRequest(gpu_id=gpu, pid=pid, vpn=vpn, issue_time=0)


def test_create_and_get():
    table = PendingTable()
    entry = table.create(req())
    assert table.get((1, 5)) is entry
    assert (1, 5) in table
    assert len(table) == 1


def test_double_create_rejected():
    table = PendingTable()
    table.create(req())
    with pytest.raises(KeyError):
        table.create(req(gpu=1))


def test_attach_merges_waiters():
    table = PendingTable()
    entry = table.create(req(gpu=0))
    table.attach(entry, req(gpu=1))
    assert len(entry.waiters) == 2
    assert table.merges == 1


def test_maybe_remove_requires_served_and_resolved():
    table = PendingTable()
    entry = table.create(req())
    entry.walk_pending = True
    assert table.maybe_remove(entry) is False
    entry.served = True
    assert table.maybe_remove(entry) is False  # walk still in flight
    entry.walk_pending = False
    assert table.maybe_remove(entry) is True
    assert (1, 5) not in table


def test_resolved_property():
    table = PendingTable()
    entry = table.create(req())
    assert entry.resolved
    entry.remote_pending = True
    assert not entry.resolved
    entry.remote_pending = False
    entry.fault_pending = True
    assert not entry.resolved


def test_peak_tracking():
    table = PendingTable()
    for vpn in range(5):
        table.create(req(vpn=vpn))
    assert table.peak == 5
