"""Unit tests for the analytic queueing model."""

import math

import pytest

from repro.analysis.queueing import erlang_c, mm_c_wait, walker_operating_point
from repro.config.presets import baseline_config
from repro.sim.driver import run_single_app


class TestErlangC:
    def test_single_server_matches_mm1(self):
        # M/M/1: P(wait) = rho.
        for rho in (0.1, 0.5, 0.9):
            assert erlang_c(1, rho) == pytest.approx(rho, rel=1e-9)

    def test_zero_load(self):
        assert erlang_c(4, 0.0) == 0.0

    def test_saturation(self):
        assert erlang_c(4, 4.0) == 1.0
        assert erlang_c(4, 9.9) == 1.0

    def test_monotone_in_load(self):
        values = [erlang_c(8, load) for load in (1.0, 3.0, 5.0, 7.0)]
        assert values == sorted(values)

    def test_more_servers_less_waiting(self):
        assert erlang_c(16, 8.0) < erlang_c(10, 8.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            erlang_c(0, 1.0)
        with pytest.raises(ValueError):
            erlang_c(4, -1.0)


class TestMMcWait:
    def test_mm1_closed_form(self):
        # M/M/1 mean wait = rho * S / (1 - rho).
        estimate = mm_c_wait(arrival_rate=0.001, service_time=500, servers=1)
        rho = 0.5
        assert estimate.mean_wait == pytest.approx(rho * 500 / (1 - rho), rel=1e-9)

    def test_unstable_queue_reports_infinite_wait(self):
        estimate = mm_c_wait(arrival_rate=1.0, service_time=500, servers=8)
        assert not estimate.stable
        assert math.isinf(estimate.mean_wait)

    def test_light_load_waits_little(self):
        estimate = mm_c_wait(arrival_rate=0.001, service_time=500, servers=24)
        assert estimate.mean_wait < 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            mm_c_wait(-1, 500, 8)
        with pytest.raises(ValueError):
            mm_c_wait(1, 0, 8)


class TestOperatingPoint:
    def test_prediction_tracks_measurement_order_of_magnitude(self):
        """The simulated walker queue is burstier than Poisson, so the
        Erlang-C estimate under-predicts — but it must agree on whether
        the pool is heavily or lightly loaded."""
        config = baseline_config()
        light = run_single_app("FIR", config, "baseline", scale=0.2)
        heavy = run_single_app("ST", config, "baseline", scale=0.2)
        light_est = walker_operating_point(light, config)
        heavy_est = walker_operating_point(heavy, config)
        assert light_est.utilization < heavy_est.utilization
        assert light_est.mean_wait < 50
        assert light.walker_queue_wait_mean < 500
        # Heavy: both theory and simulation report substantial queueing.
        assert heavy_est.utilization > 0.5
        assert heavy.walker_queue_wait_mean > 500
