"""Unit tests for sharing metrics and weighted speedup."""

import numpy as np
import pytest

from repro.config.presets import baseline_config
from repro.metrics.sharing import (
    iommu_composition,
    mean_cross_level_duplication,
    mean_l2_duplication,
    shared_fraction,
    sharing_degrees,
)
from repro.metrics.weighted_speedup import (
    normalized_weighted_speedup,
    per_app_slowdowns,
    weighted_speedup,
)
from repro.sim.results import AppResult, SimulationResult, Snapshot
from repro.workloads.multi_app import build_single_app_workload
from repro.workloads.trace import CUStream, Placement, Workload


def make_workload(gpu_pages: dict[int, list[int]]):
    placements = [
        Placement(
            gpu_id=g, pid=1, app_name="x", cu_ids=[0],
            streams=[CUStream(
                np.array(pages, dtype=np.int64),
                np.ones(len(pages), dtype=np.int64),
                np.ones(len(pages), dtype=np.int64),
            )],
        )
        for g, pages in gpu_pages.items()
    ]
    pages = sorted({p for ps in gpu_pages.values() for p in ps})
    return Workload(name="x", kind="single", placements=placements,
                    app_names={1: "x"}, footprints={1: np.array(pages)})


class TestSharingDegrees:
    def test_disjoint_pages_unshared(self):
        workload = make_workload({0: [1, 2], 1: [3, 4]})
        assert sharing_degrees(workload) == {1: 1.0}
        assert shared_fraction(workload) == 0.0

    def test_fully_shared(self):
        workload = make_workload({g: [7, 8] for g in range(4)})
        assert sharing_degrees(workload) == {4: 1.0}
        assert shared_fraction(workload) == 1.0

    def test_mixed_degrees(self):
        # Pages: 1 -> GPU0 only; 2 -> GPUs 0,1; 3 -> GPUs 1,2; 9 -> GPU3.
        workload = make_workload({0: [1, 2], 1: [2, 3], 2: [3], 3: [9]})
        degrees = sharing_degrees(workload)
        assert degrees[1] == pytest.approx(0.5)
        assert degrees[2] == pytest.approx(0.5)

    def test_multi_pid_requires_explicit_pid(self):
        workload = make_workload({0: [1]})
        workload.app_names = {1: "a", 2: "b"}
        with pytest.raises(ValueError, match="pass pid"):
            sharing_degrees(workload)

    def test_paper_patterns_sharing_shape(self):
        """Figure 4's qualitative ordering: partitioned apps (KM) share
        nothing; random/scatter apps (PR, MM) share heavily."""
        config = baseline_config()
        km = build_single_app_workload("KM", config, scale=0.5)
        pr = build_single_app_workload("PR", config, scale=0.5)
        mm = build_single_app_workload("MM", config, scale=0.5)
        assert shared_fraction(km) == 0.0
        assert shared_fraction(pr) > 0.6
        assert shared_fraction(mm) > 0.5
        assert shared_fraction(pr) > shared_fraction(km)


class TestSnapshotsAggregates:
    def snap(self, cycle, resident, duplicated, cross, owners=(1, 1, 1, 1)):
        return Snapshot(
            cycle=cycle, l2_resident=resident, l2_duplicated=duplicated,
            l2_also_in_iommu=cross, iommu_resident=sum(owners),
            iommu_owner_counts=owners,
        )

    def test_mean_duplication(self):
        snaps = [self.snap(0, 100, 25, 50), self.snap(1, 100, 35, 70)]
        assert mean_l2_duplication(snaps) == pytest.approx(0.30)
        assert mean_cross_level_duplication(snaps) == pytest.approx(0.60)

    def test_empty_snapshots(self):
        assert mean_l2_duplication([]) == 0.0
        assert iommu_composition([]) == []

    def test_iommu_composition(self):
        snaps = [self.snap(0, 10, 0, 0, owners=(2, 0, 0, 2))]
        comp = iommu_composition(snaps)
        assert comp == pytest.approx([0.5, 0, 0, 0.5])


def make_result(ipcs: dict[int, float], names: dict[int, str]):
    apps = {
        pid: AppResult(
            pid=pid, app_name=names[pid], gpu_ids=(pid - 1,),
            instructions=int(ipc * 1000), runs=10, accesses=10,
            exec_cycles=1000, counters={}, mean_translation_latency=0.0,
        )
        for pid, ipc in ipcs.items()
    }
    return SimulationResult(
        workload_name="w", workload_kind="multi", policy_name="p",
        total_cycles=1000, apps=apps, iommu_counters={}, walker_counters={},
        walker_queue_wait_mean=0.0,
    )


class TestWeightedSpeedup:
    def test_no_interference_gives_app_count(self):
        mix = make_result({1: 2.0, 2: 3.0}, {1: "A", 2: "B"})
        alone = {"A": mix.apps[1], "B": mix.apps[2]}
        assert weighted_speedup(mix, alone) == pytest.approx(2.0)

    def test_slowdowns_per_app(self):
        mix = make_result({1: 1.0, 2: 1.5}, {1: "A", 2: "B"})
        alone = {"A": make_result({1: 2.0}, {1: "A"}).apps[1],
                 "B": make_result({1: 3.0}, {1: "B"}).apps[1]}
        slowdowns = per_app_slowdowns(mix, alone)
        assert slowdowns[1] == pytest.approx(0.5)
        assert slowdowns[2] == pytest.approx(0.5)

    def test_duplicate_apps_share_alone_run(self):
        mix = make_result({1: 1.0, 2: 1.0}, {1: "A", 2: "A"})
        alone = {"A": make_result({1: 2.0}, {1: "A"}).apps[1]}
        assert weighted_speedup(mix, alone) == pytest.approx(1.0)

    def test_missing_alone_run_raises(self):
        mix = make_result({1: 1.0}, {1: "A"})
        with pytest.raises(ValueError, match="no alone run"):
            weighted_speedup(mix, {})

    def test_normalized_ws(self):
        base = make_result({1: 1.0}, {1: "A"})
        better = make_result({1: 1.3}, {1: "A"})
        alone = {"A": make_result({1: 2.0}, {1: "A"}).apps[1]}
        assert normalized_weighted_speedup(better, base, alone) == pytest.approx(1.3)
