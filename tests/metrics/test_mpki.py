"""Unit tests for the MPKI helpers."""

import pytest

from repro.metrics.mpki import l2_mpki, mpki_table
from repro.sim.results import AppResult, SimulationResult


def app(pid, name, l2_miss, instructions):
    return AppResult(
        pid=pid, app_name=name, gpu_ids=(pid - 1,),
        instructions=instructions, runs=1, accesses=1, exec_cycles=100,
        counters={"l2_miss": l2_miss}, mean_translation_latency=0.0,
    )


def result(apps):
    return SimulationResult(
        workload_name="w", workload_kind="multi", policy_name="p",
        total_cycles=100, apps={a.pid: a for a in apps},
        iommu_counters={}, walker_counters={}, walker_queue_wait_mean=0.0,
    )


def test_l2_mpki():
    assert l2_mpki(app(1, "A", l2_miss=50, instructions=100_000)) == pytest.approx(0.5)


def test_mpki_zero_instructions():
    assert l2_mpki(app(1, "A", l2_miss=50, instructions=0)) == 0.0


def test_mpki_table_classifies():
    table = mpki_table(result([
        app(1, "A", 5, 100_000),      # 0.05 -> L
        app(2, "B", 50, 100_000),     # 0.5  -> M
        app(3, "C", 500, 100_000),    # 5.0  -> H
    ]))
    assert table["A"] == (pytest.approx(0.05), "L")
    assert table["B"][1] == "M"
    assert table["C"][1] == "H"


def test_mpki_table_averages_duplicates():
    table = mpki_table(result([
        app(1, "MT", 100, 100_000),
        app(2, "MT", 300, 100_000),
    ]))
    assert table["MT"][0] == pytest.approx(2.0)
