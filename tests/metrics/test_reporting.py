"""Unit tests for the reporting package (charts and export)."""

import json

import pytest

from repro.reporting.charts import bar_chart, cdf_chart, comparison_table, grouped_bars
from repro.reporting.export import result_to_dict, save_result_json
from repro.sim.driver import run_single_app


class TestBarChart:
    def test_renders_labels_and_values(self):
        text = bar_chart([("baseline", 1.0), ("least", 1.25)])
        assert "baseline" in text and "least" in text
        assert "1.250" in text

    def test_longest_bar_is_max(self):
        text = bar_chart([("a", 1.0), ("b", 2.0)], width=10)
        lines = text.splitlines()
        assert lines[1].count("#") > lines[0].count("#")

    def test_baseline_tick_present(self):
        text = bar_chart([("a", 0.5), ("b", 2.0)], baseline=1.0)
        assert "|" in text or "+" in text

    def test_empty(self):
        assert bar_chart([]) == "(no data)"


class TestCDFChart:
    def test_marker_annotates(self):
        text = cdf_chart([(1024, 0.5), (4096, 0.9)], markers={4096: "capacity"})
        assert "<- capacity" in text
        assert "50.0%" in text

    def test_empty(self):
        assert cdf_chart([]) == "(no data)"


class TestGroupedBars:
    def test_groups_titled(self):
        text = grouped_bars([("W1", [("FIR", 1.0)]), ("W2", [("MM", 1.2)])])
        assert "[W1]" in text and "[W2]" in text

    def test_shared_scale(self):
        text = grouped_bars(
            [("g1", [("a", 1.0)]), ("g2", [("b", 4.0)])], width=8
        )
        lines = [l for l in text.splitlines() if "#" in l]
        assert lines[1].count("#") >= 4 * lines[0].count("#") - 1


class TestComparisonTable:
    def test_alignment_and_floats(self):
        text = comparison_table([["x", 1.23456], ["long-name", 2.0]], ["col", "val"])
        assert "1.235" in text
        assert "long-name" in text


class TestExport:
    @pytest.fixture(scope="class")
    def result(self):
        return run_single_app("FIR", scale=0.05, record_iommu_stream=True)

    def test_result_to_dict_shape(self, result):
        data = result_to_dict(result)
        assert data["workload"] == "FIR"
        assert data["apps"]["1"]["mpki"] >= 0
        assert "iommu_stream" not in data

    def test_stream_included_on_request(self, result):
        data = result_to_dict(result, include_stream=True)
        assert isinstance(data["iommu_stream"], list)

    def test_save_json_roundtrips(self, result, tmp_path):
        path = save_result_json(result, tmp_path / "r.json")
        data = json.loads(path.read_text())
        assert data["total_cycles"] == result.total_cycles
        # Everything must be JSON-native (no numpy scalars).
        json.dumps(data)
