"""Unit tests for reuse-distance computation."""

import numpy as np
import pytest

from repro.metrics.reuse_distance import (
    COLD,
    fraction_within,
    per_pid_distances,
    reuse_cdf,
    reuse_distances,
)


def keys(*vpns, pid=1):
    return [(pid, v) for v in vpns]


class TestReuseDistances:
    def test_first_access_is_cold(self):
        distances = reuse_distances(keys(1, 2, 3))
        assert distances.tolist() == [COLD, COLD, COLD]

    def test_immediate_reuse_distance_zero(self):
        distances = reuse_distances(keys(1, 1))
        assert distances.tolist() == [COLD, 0]

    def test_unique_keys_between(self):
        # a b c a: two distinct keys (b, c) between the two a's.
        distances = reuse_distances(keys(1, 2, 3, 1))
        assert distances[3] == 2

    def test_repeated_key_counts_once(self):
        # a b b b a: only one distinct key between the a's.
        distances = reuse_distances(keys(1, 2, 2, 2, 1))
        assert distances[4] == 1

    def test_classic_stack_distance_example(self):
        # Sequence: a b c b a -> distances: -, -, -, 1 (c), 2 (b, c)
        distances = reuse_distances(keys(1, 2, 3, 2, 1))
        assert distances.tolist() == [COLD, COLD, COLD, 1, 2]

    def test_pid_distinguishes_keys(self):
        stream = [(1, 5), (2, 5), (1, 5)]
        distances = reuse_distances(stream)
        # (2,5) is a different translation: distance for the second (1,5)
        # counts it as one distinct key in between.
        assert distances.tolist() == [COLD, COLD, 1]

    def test_empty_stream(self):
        assert len(reuse_distances([])) == 0

    def test_matches_naive_implementation(self):
        rng = np.random.default_rng(3)
        stream = [(1, int(v)) for v in rng.integers(0, 30, 300)]
        fast = reuse_distances(stream)
        last = {}
        for i, key in enumerate(stream):
            if key in last:
                expected = len(set(stream[last[key] + 1 : i]))
                assert fast[i] == expected, i
            else:
                assert fast[i] == COLD
            last[key] = i


class TestCDF:
    def test_cdf_monotone(self):
        rng = np.random.default_rng(1)
        stream = [(1, int(v)) for v in rng.integers(0, 200, 2000)]
        cdf = reuse_cdf(reuse_distances(stream))
        fracs = [f for _, f in cdf]
        assert fracs == sorted(fracs)
        assert fracs[-1] == pytest.approx(1.0)

    def test_cdf_empty(self):
        assert all(f == 0.0 for _, f in reuse_cdf(reuse_distances([])))

    def test_custom_points(self):
        stream = keys(1, 1, 2, 2)
        cdf = reuse_cdf(reuse_distances(stream), points=[0, 10])
        assert cdf[0] == (0, 1.0)


class TestFractionWithin:
    def test_all_within_large_capacity(self):
        stream = keys(1, 2, 1, 2)
        assert fraction_within(reuse_distances(stream), 4096) == 1.0

    def test_none_when_no_reuses(self):
        assert fraction_within(reuse_distances(keys(1, 2, 3)), 10) == 0.0

    def test_partial(self):
        # distances: 0 (1->1) and 2 (2 ... 2 across {3,4}).
        stream = keys(2, 1, 1, 3, 4, 2)
        distances = reuse_distances(stream)
        assert fraction_within(distances, 1) == pytest.approx(0.5)


class TestPerPid:
    def test_split_by_pid_keeps_interleaved_distances(self):
        # pid 1 reuses page 0 with pid 2's pages in between.
        stream = [(1, 0), (2, 10), (2, 11), (1, 0)]
        by_pid = per_pid_distances(stream)
        assert by_pid[1].tolist() == [COLD, 2]
        assert by_pid[2].tolist() == [COLD, COLD]
