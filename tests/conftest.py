"""Shared fixtures for the test suite.

Simulation tests run at a small trace scale by default; tests that assert
paper-shape results use moderate scales and are marked ``slow``.
"""

from __future__ import annotations

import pytest

from repro.config.presets import baseline_config
from repro.config.system import (
    GPUConfig,
    IOMMUConfig,
    InterconnectConfig,
    SystemConfig,
    TLBLevelConfig,
    TrackerConfig,
)

TEST_SCALE = 0.1
"""Default trace scale for functional simulation tests."""


@pytest.fixture
def config() -> SystemConfig:
    """The Table 2 baseline configuration."""
    return baseline_config()


@pytest.fixture
def tiny_config() -> SystemConfig:
    """A miniature system for fast protocol-level tests: 4 GPUs with a few
    CUs each, small TLBs, short latencies."""
    return SystemConfig(
        num_gpus=4,
        gpu=GPUConfig(
            num_cus=4,
            slots_per_cu=2,
            l1_tlb=TLBLevelConfig(num_entries=4, associativity=4, lookup_latency=1),
            l2_tlb=TLBLevelConfig(num_entries=32, associativity=8, lookup_latency=5),
        ),
        iommu=IOMMUConfig(
            tlb=TLBLevelConfig(num_entries=128, associativity=16, lookup_latency=20),
            num_walkers=2,
            walker_threads=2,
            walk_latency=100,
        ),
        tracker=TrackerConfig(total_entries=64, kind="perfect"),
        interconnect=InterconnectConfig(host_link_latency=30, peer_link_latency=10),
        seed=7,
    )
