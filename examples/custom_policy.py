#!/usr/bin/env python3
"""Extending the simulator with a custom translation policy.

Implements *second-touch insertion* as a worked example: like the
mostly-inclusive baseline, but a page-walk result enters the shared IOMMU
TLB only on the page's second walk.  Streaming pages that are walked once
and never reused stop thrashing the shared capacity, while genuinely
reused translations still get cached — a classic cache-bypass idea
applied to the IOMMU TLB.

The recipe for any custom policy:

1. subclass :class:`~repro.policies.base.TranslationPolicy` (here the
   baseline, overriding the walk-fill hook);
2. build a :class:`~repro.sim.MultiGPUSystem` and inject the policy;
3. compare against the stock designs on the same workload.

Run:
    python examples/custom_policy.py [scale]
"""

import sys

from repro import MultiGPUSystem, baseline_config, build_single_app_workload
from repro.gpu.ats import ATSRequest
from repro.policies.mostly_inclusive import MostlyInclusivePolicy
from repro.structures.tlb import TLBEntry


class SecondTouchPolicy(MostlyInclusivePolicy):
    """Mostly-inclusive hierarchy with bypass-on-first-walk at the IOMMU.

    The first walk of a page fills only the requesting GPU's L2/L1; the
    page's VPN is remembered in a (boundless, for clarity) first-touch
    set.  Only a second walk — proof of long-distance reuse — earns an
    IOMMU TLB slot.
    """

    name = "second-touch"

    def __init__(self, system):
        super().__init__(system)
        self._walked_once: set[tuple[int, int]] = set()
        self.bypassed = 0

    def _fill_levels_after_walk(self, request: ATSRequest, ppn: int) -> None:
        key = request.key
        if key not in self._walked_once:
            self._walked_once.add(key)
            self.bypassed += 1
            return  # bypass: L2/L1 still fill via the response path
        entry = TLBEntry(request.pid, request.vpn, ppn, owner_gpu=request.gpu_id)
        victim = self.iommu.insert_tlb(entry)
        if victim is not None:
            self.on_iommu_tlb_evicted(victim)


def run_policy(app: str, config, policy, scale: float):
    workload = build_single_app_workload(app, config, scale=scale)
    system = MultiGPUSystem(config, workload, "baseline")
    if isinstance(policy, type):
        system.policy = policy(system)
    elif policy != "baseline":
        system = MultiGPUSystem(config, workload, policy)
    return system


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.3
    config = baseline_config()
    app = "PR"

    print(f"Comparing policies on {app} (scale {scale}) ...")
    systems = {
        "baseline": run_policy(app, config, "baseline", scale),
        "second-touch": run_policy(app, config, SecondTouchPolicy, scale),
        "least-tlb": run_policy(app, config, "least-tlb", scale),
    }
    results = {name: system.run() for name, system in systems.items()}

    base = results["baseline"]
    print(f"\n{'policy':<14}{'exec cycles':>13}{'IOMMU hit':>11}{'walks':>9}{'speedup':>9}")
    for name, result in results.items():
        a = result.apps[1]
        print(
            f"{name:<14}{a.exec_cycles:>13,}{a.iommu_hit_rate:>11.3f}"
            f"{a.counters.get('walks', 0):>9,}{result.speedup_vs(base):>9.3f}x"
        )
    second_touch = systems["second-touch"].policy
    print(f"\nsecond-touch bypassed {second_touch.bypassed:,} first-walk fills "
          f"of the IOMMU TLB")
    print(
        "Note the instructive failure: on a reuse-heavy workload every page "
        "now pays TWO walks before it is cached at the IOMMU, so walk "
        "traffic rises and performance drops.  Heuristic bypass needs "
        "accurate prediction; least-TLB instead changes the structure "
        "(victim-TLB reach + tracker sharing) and wins without predicting."
    )


if __name__ == "__main__":
    main()
