#!/usr/bin/env python3
"""Quickstart: measure what least-TLB buys one application.

Runs Matrix Multiplication (MM, a medium-MPKI scatter-gather kernel) on
the paper's 4-GPU baseline system under three designs:

* the mostly-inclusive baseline TLB hierarchy,
* the paper's least-TLB (least-inclusive + tracker sharing),
* an impractical infinite IOMMU TLB (the upper bound of Figure 3),

and prints execution time, hit rates, and speedups.

Run:
    python examples/quickstart.py [scale]

``scale`` (default 0.3) shortens the trace proportionally; use 1.0 for
full-length runs.
"""

import sys

from repro import infinite_iommu_config, run_single_app

APP = "MM"


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.3

    print(f"Simulating {APP} on 4 GPUs (trace scale {scale}) ...")
    baseline = run_single_app(APP, policy="baseline", scale=scale)
    least = run_single_app(APP, policy="least-tlb", scale=scale)
    infinite = run_single_app(
        APP, infinite_iommu_config(), policy="baseline", scale=scale
    )

    print(f"\n{'design':<22}{'exec cycles':>14}{'L2 hit':>9}"
          f"{'IOMMU hit':>11}{'remote hit':>12}{'speedup':>9}")
    for name, result in (
        ("mostly-inclusive", baseline),
        ("least-TLB", least),
        ("infinite IOMMU TLB", infinite),
    ):
        app = result.apps[1]
        print(
            f"{name:<22}{app.exec_cycles:>14,}{app.l2_hit_rate:>9.3f}"
            f"{app.iommu_hit_rate:>11.3f}{app.remote_hit_rate:>12.3f}"
            f"{result.speedup_vs(baseline):>9.3f}x"
        )

    tracker = least.tracker_stats
    print(
        f"\nleast-TLB tracker: {tracker['queries']:,} queries, "
        f"{tracker['remote_hits']:,} remote L2 hits, "
        f"{tracker['false_positives']:,} false positives "
        f"(hidden by the racing page walk)"
    )
    print(
        f"page walks: baseline {baseline.apps[1].counters['walks']:,} "
        f"vs least-TLB {least.apps[1].counters['walks']:,}"
    )


if __name__ == "__main__":
    main()
