#!/usr/bin/env python3
"""Multi-tenant GPU serving: how IOMMU TLB contention hurts co-located
applications, and how spilling recovers it.

Scenario: a 4-GPU inference server co-locates four tenants (the paper's
W8 mix: KMeans, PageRank, MatMul, BitonicSort — all medium MPKI).  We
quantify each tenant's slowdown relative to running alone (weighted
speedup), then enable least-TLB's spilling and measure the recovery.

Run:
    python examples/multi_tenant_contention.py [workload] [scale]
"""

import sys

from repro import run_alone, run_multi_app
from repro.metrics import per_app_slowdowns, weighted_speedup
from repro.workloads import MULTI_APP_WORKLOADS


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "W8"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.3
    apps, category = MULTI_APP_WORKLOADS[workload]

    print(f"Workload {workload} ({category}): {', '.join(apps)}")
    print(f"Running alone references (scale {scale}) ...")
    alone = {app: run_alone(app, scale=scale).apps[1] for app in set(apps)}

    print("Running the contended mix under both designs ...")
    baseline = run_multi_app(workload, policy="baseline", scale=scale)
    least = run_multi_app(workload, policy="least-tlb", scale=scale)

    base_slow = per_app_slowdowns(baseline, alone)
    least_slow = per_app_slowdowns(least, alone)

    print(f"\n{'tenant':<8}{'alone IPC':>11}{'mix IPC (base)':>16}"
          f"{'slowdown':>10}{'with least-TLB':>16}")
    for pid in sorted(baseline.apps):
        app = baseline.apps[pid]
        print(
            f"{app.app_name:<8}{alone[app.app_name].ipc:>11.1f}"
            f"{app.ipc:>16.1f}{base_slow[pid]:>10.3f}"
            f"{least_slow[pid]:>16.3f}"
        )

    ws_base = weighted_speedup(baseline, alone)
    ws_least = weighted_speedup(least, alone)
    print(f"\nweighted speedup (max {len(apps)}.0):")
    print(f"  baseline  : {ws_base:.3f}")
    print(f"  least-TLB : {ws_least:.3f}  ({ws_least / ws_base - 1:+.1%})")

    spills = least.iommu_counters.get("spills", 0)
    discarded = least.iommu_counters.get("spilled_discarded", 0)
    remote = least.iommu_counters.get("remote_hits", 0)
    print(
        f"\nspilling activity: {spills:,} IOMMU TLB victims spilled to peer "
        f"L2s; {remote:,} reused remotely; {discarded:,} aged out unused"
    )
    for gpu in range(4):
        count = least.iommu_counters.get(f"spills_to_gpu{gpu}", 0)
        name = least.apps.get(gpu + 1)
        label = name.app_name if name else "idle"
        print(f"  GPU{gpu} ({label:<4}) received {count:,} spills")


if __name__ == "__main__":
    main()
