#!/usr/bin/env python3
"""Heterogeneous devices sharing one IOMMU: QoS-aware spilling.

The paper's discussion (Section 4.4) envisions least-TLB in systems where
the devices behind the IOMMU are not equal — a latency-critical inference
accelerator next to best-effort batch GPUs.  Plain spilling treats every
L2 TLB as a fair victim buffer; the device-aware extension weighs spill
placement by per-device QoS so the critical device's L2 is protected.

This script runs the W5 mix (AES, FIR, PR, ST), declares the GPU running
ST latency-critical, and compares:

* baseline (no spilling at all),
* least-TLB (fairness-blind spilling),
* least-TLB-qos (weight 8 on the critical device).

Run:
    python examples/heterogeneous_qos.py [scale]
"""

import sys

from repro import run_multi_app
from repro.reporting import bar_chart
from repro.workloads import MULTI_APP_WORKLOADS

WORKLOAD = "W5"
CRITICAL_GPU = 3
WEIGHTS = [1.0, 1.0, 1.0, 8.0]


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.3
    apps = MULTI_APP_WORKLOADS[WORKLOAD][0]
    critical_app = apps[CRITICAL_GPU]
    print(f"Workload {WORKLOAD}: {', '.join(apps)}; "
          f"GPU{CRITICAL_GPU} ({critical_app}) is latency-critical "
          f"(weight {WEIGHTS[CRITICAL_GPU]})")

    base = run_multi_app(WORKLOAD, policy="baseline", scale=scale)
    plain = run_multi_app(WORKLOAD, policy="least-tlb", scale=scale)
    qos = run_multi_app(
        WORKLOAD, policy="least-tlb-qos", scale=scale,
        policy_options={"qos_weights": WEIGHTS},
    )

    print(f"\nper-application speedup vs baseline ({critical_app} marked *):")
    for name, result in (("least-tlb", plain), ("least-tlb-qos", qos)):
        speedups = result.per_app_speedup_vs(base)
        items = [
            (f"{apps[pid - 1]}{'*' if pid - 1 == CRITICAL_GPU else ' '}",
             speedups[pid])
            for pid in sorted(speedups)
        ]
        print(f"\n[{name}]")
        print(bar_chart(items, baseline=1.0))

    print("\nspill placement (who hosts the IOMMU TLB victims):")
    for name, result in (("least-tlb", plain), ("least-tlb-qos", qos)):
        shares = [
            result.iommu_counters.get(f"spills_to_gpu{gpu}", 0)
            for gpu in range(4)
        ]
        total = max(1, sum(shares))
        row = "  ".join(
            f"GPU{gpu}({apps[gpu]}): {count / total:5.1%}"
            for gpu, count in enumerate(shares)
        )
        print(f"  {name:<14} {row}")


if __name__ == "__main__":
    main()
