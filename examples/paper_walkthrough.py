#!/usr/bin/env python3
"""Replay the paper's Figure 10 walk-through, printing TLB states.

A miniature 4-GPU system (one-entry L2 TLBs, a four-entry IOMMU TLB)
executes the paper's four-step example under least-TLB, dumping every
TLB's contents after each step — the exact table of Figure 10, live.

Run:
    python examples/paper_walkthrough.py
"""

import numpy as np

from repro import MultiGPUSystem
from repro.config import (
    GPUConfig,
    IOMMUConfig,
    InterconnectConfig,
    SystemConfig,
    TLBLevelConfig,
    TrackerConfig,
)
from repro.workloads import CUStream, Placement, Workload

PID = 1
STEP = 50_000


def tiny_system() -> MultiGPUSystem:
    config = SystemConfig(
        num_gpus=4,
        gpu=GPUConfig(
            num_cus=1, slots_per_cu=1,
            l1_tlb=TLBLevelConfig(num_entries=1, associativity=1, lookup_latency=1),
            l2_tlb=TLBLevelConfig(num_entries=1, associativity=1, lookup_latency=5),
        ),
        iommu=IOMMUConfig(
            tlb=TLBLevelConfig(num_entries=4, associativity=4, lookup_latency=20),
            num_walkers=2, walker_threads=2, walk_latency=100,
        ),
        tracker=TrackerConfig(total_entries=64, kind="perfect"),
        interconnect=InterconnectConfig(host_link_latency=30, peer_link_latency=10),
    )
    steps = [(0, 0x5), (1, 0x1), (2, 0x1), (3, 0x1)]
    placements = [
        Placement(
            gpu_id=gpu, pid=PID, app_name="fig10", cu_ids=[0],
            streams=[CUStream(
                np.array([vpn], dtype=np.int64),
                np.array([(i + 1) * STEP], dtype=np.int64),
                np.array([1], dtype=np.int64),
            )],
        )
        for i, (gpu, vpn) in enumerate(steps)
    ]
    workload = Workload(
        name="fig10", kind="single", placements=placements,
        app_names={PID: "fig10"}, footprints={PID: np.arange(0x10)},
    )
    system = MultiGPUSystem(config, workload, "least-tlb")
    # Initial state: GPU_i's L2 holds page 0x(i+1); the IOMMU TLB is empty.
    for gpu_id in range(4):
        system.gpus[gpu_id].receive_fill(PID, gpu_id + 1, gpu_id + 100, 1)
    return system


def dump(system: MultiGPUSystem, label: str) -> None:
    l2s = [
        ",".join(f"0x{e.vpn:X}" for e in system.gpus[g].l2_tlb.iter_entries()) or "-"
        for g in range(4)
    ]
    iommu = ",".join(f"0x{e.vpn:X}" for e in system.iommu.tlb.iter_entries()) or "-"
    print(f"{label:<28} L2s: [{'] ['.join(l2s)}]   IOMMU TLB: {{{iommu}}}")


def main() -> None:
    system = tiny_system()
    for gpu in system.gpus:
        gpu.start()

    print("Figure 10 walk-through (least-TLB, single-application mode)\n")
    dump(system, "initial")
    steps = [
        "step 1: GPU0 asks 0x5 (miss everywhere -> walk; 0x1 drops to IOMMU)",
        "step 2: GPU1 asks 0x1 (IOMMU hit -> entry MOVES to GPU1)",
        "step 3: GPU2 asks 0x1 (tracker -> remote hit in GPU1, copy kept)",
        "step 4: GPU3 asks 0x1 (remote hit again)",
    ]
    for i, label in enumerate(steps, start=1):
        system.queue.run(until=(i + 1) * STEP - 1)
        dump(system, label)

    stats = system.iommu.stats
    print(
        f"\nserved: {stats['tlb_hit']} IOMMU hit, {stats['remote_hits']} remote, "
        f"{system.iommu.walkers.stats['walks_dispatched']} walks "
        f"({stats.as_dict().get('walks_wasted', 0)} lost the race)"
    )
    print("Compare with the paper: baseline (mostly-inclusive) misses steps "
          "1-2 and hits only 3-4; least-TLB serves steps 2-4 without waiting "
          "for a page walk.")


if __name__ == "__main__":
    main()
