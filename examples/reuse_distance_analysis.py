#!/usr/bin/env python3
"""Translation reuse-distance characterisation (the Figure 5/8 analysis).

Records the stream of translation requests arriving at the IOMMU for a
few applications, computes reuse-distance CDFs, and marks where the
4096-entry IOMMU TLB capacity falls — the quantity that decides whether a
reuse is capturable at all, and the foundation of the paper's motivation.

Run:
    python examples/reuse_distance_analysis.py [scale]
"""

import sys

from repro import run_single_app
from repro.metrics import fraction_within, reuse_cdf, reuse_distances

APPS = ("FIR", "KM", "PR", "ST")
IOMMU_CAPACITY = 4096
LEAST_TLB_REACH = 4096 + 4 * 512  # IOMMU TLB + deduplicated L2s


def bar(fraction: float, width: int = 40) -> str:
    filled = int(fraction * width)
    return "#" * filled + "." * (width - filled)


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.3

    for app in APPS:
        result = run_single_app(
            app, policy="baseline", scale=scale, record_iommu_stream=True
        )
        distances = reuse_distances(result.iommu_stream)
        finite = distances[distances >= 0]
        print(f"\n=== {app}: {len(result.iommu_stream):,} IOMMU requests, "
              f"{len(finite):,} reuses ===")
        if not len(finite):
            print("  (no reuse traffic reaches the IOMMU)")
            continue
        for distance, frac in reuse_cdf(distances):
            marker = ""
            if distance == IOMMU_CAPACITY:
                marker = "  <- IOMMU TLB capacity"
            print(f"  <= {distance:>6,}: {bar(frac)} {frac:6.1%}{marker}")
        within_iommu = fraction_within(distances, IOMMU_CAPACITY)
        within_least = fraction_within(distances, LEAST_TLB_REACH)
        print(f"  capturable by baseline IOMMU TLB : {within_iommu:6.1%}")
        print(f"  capturable by least-TLB reach    : {within_least:6.1%}"
              f"  (+{within_least - within_iommu:.1%})")


if __name__ == "__main__":
    main()
