#!/usr/bin/env python3
"""Design-space exploration with the configuration system.

Sweeps two of the paper's sensitivity axes in one script:

* IOMMU TLB size (1k-8k entries) — how much raw capacity buys vs what
  least-TLB recovers architecturally;
* remote access latency (Figure 20) — when is fetching from a peer GPU's
  L2 still worth it, and why racing the page walk makes the design robust.

Run:
    python examples/design_space_sweep.py [scale]
"""

import sys
from dataclasses import replace

from repro import baseline_config, remote_latency_config, run_single_app
from repro.config import TLBLevelConfig

APP = "MM"


def sweep_iommu_size(scale: float) -> None:
    print(f"\n--- IOMMU TLB size sweep ({APP}) ---")
    print(f"{'entries':>8}{'baseline hit':>14}{'least hit+rem':>15}{'least speedup':>15}")
    for entries in (1024, 2048, 4096, 8192):
        config = baseline_config()
        config = config.derive(
            iommu=replace(
                config.iommu,
                tlb=TLBLevelConfig(num_entries=entries, associativity=64,
                                   lookup_latency=200),
            )
        )
        base = run_single_app(APP, config, "baseline", scale=scale)
        least = run_single_app(APP, config, "least-tlb", scale=scale)
        b, l = base.apps[1], least.apps[1]
        print(
            f"{entries:>8}{b.iommu_hit_rate:>14.3f}"
            f"{l.iommu_hit_rate + l.remote_hit_rate:>15.3f}"
            f"{least.speedup_vs(base):>14.3f}x"
        )


def sweep_remote_latency(scale: float) -> None:
    print(f"\n--- Remote access latency sweep ({APP}, Figure 20) ---")
    print(f"{'latency x':>10}{'remote-only':>13}{'least (raced)':>15}")
    base = run_single_app(APP, policy="baseline", scale=scale)
    for factor in (0.5, 1.0, 2.0, 4.0, 8.0):
        config = remote_latency_config(factor)
        serial = run_single_app(
            APP, config, "least-tlb", scale=scale,
            policy_options={"race_ptw": False},
        )
        raced = run_single_app(APP, config, "least-tlb", scale=scale)
        print(
            f"{factor:>10.1f}{serial.speedup_vs(base):>12.3f}x"
            f"{raced.speedup_vs(base):>14.3f}x"
        )
    print("(the raced design never waits on a slow remote: the page walk "
          "bounds its latency)")


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.25
    sweep_iommu_size(scale)
    sweep_remote_latency(scale)


if __name__ == "__main__":
    main()
